#include "sim/fleet.hpp"

#include <condition_variable>
#include <cstring>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/choosers.hpp"
#include "sim/flat_kernel.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace elrr::sim {

namespace fleet_detail {

/// Default step_batch lane pack (SSE-width int32 vectors) and the widest
/// one the driver instantiates. Wider packs help hosts with wider SIMD
/// (build with -DELRR_NATIVE=ON) and workloads with many runs per
/// candidate; SimOptions::max_batch picks per job.
inline constexpr std::size_t kDefaultLane = 4;
inline constexpr std::size_t kMaxLane = 16;

/// The slice widths execute_slice can step directly (descending). A job's
/// runs are packed greedily: the widest allowed width first, remainders
/// through the narrower ones, so any (runs, lane_cap) pair partitions
/// into supported widths. The partition is fixed up front per job --
/// independent of worker scheduling -- and lane packing never changes
/// results (every run draws from run-private streams).
inline constexpr std::size_t kLaneWidths[] = {16, 8, 4, 3, 2, 1};

std::size_t next_slice_width(std::size_t lane_cap, std::size_t remaining) {
  for (const std::size_t w : kLaneWidths) {
    if (w <= lane_cap && w <= remaining) return w;
  }
  return 1;
}

/// Independent per-node streams, derived exactly like the reference
/// driver always has: one master stream split once per node, so adding a
/// node does not perturb the others' select sequences.
std::vector<Rng> node_streams(std::uint64_t seed, std::size_t num_nodes) {
  Rng master(seed);
  std::vector<Rng> streams;
  streams.reserve(num_nodes);
  for (std::size_t n = 0; n < num_nodes; ++n) streams.push_back(master.split());
  return streams;
}

/// One full replication on the flat fast path: templated choosers, no
/// allocation after the stream setup.
double run_flat(const FlatKernel& kernel, const GuardTable& guards,
                const LatencyTable& latencies, std::uint64_t seed,
                const SimOptions& options) {
  const std::size_t num_nodes = kernel.num_nodes();
  std::vector<Rng> streams = node_streams(seed, num_nodes);
  const TableGuardChooser guard{&guards, streams.data()};
  const TableLatencyChooser latency{&latencies, streams.data()};

  FlatState state = kernel.initial_state();
  for (std::size_t t = 0; t < options.warmup_cycles; ++t) {
    kernel.step(state, guard, latency);
  }
  std::uint64_t firings = 0;
  for (std::size_t t = 0; t < options.measure_cycles; ++t) {
    firings += kernel.step(state, guard, latency);
  }
  return static_cast<double>(firings) /
         (static_cast<double>(options.measure_cycles) *
          static_cast<double>(num_nodes));
}

/// K replications interleaved through one FlatKernel pass. Each run
/// draws from the same streams the solo path would (RunStreams derives
/// them master-per-run, node-major), so per-run theta is bit-identical
/// to run_flat for every lane width -- telescopic graphs included (the
/// batched stepper carries per-lane busy countdowns, and each lane's
/// latency draws come from its own run-private streams).
template <std::size_t K>
void run_flat_batch(const FlatKernel& kernel, const GuardTable& guards,
                    const LatencyTable& latencies, std::uint64_t sim_seed,
                    std::size_t first_run, const SimOptions& options,
                    double* thetas) {
  const std::size_t num_nodes = kernel.num_nodes();
  std::uint64_t seeds[K];
  for (std::size_t r = 0; r < K; ++r) {
    seeds[r] = run_seed(sim_seed, first_run + r);
  }
  RunStreams streams(seeds, K, num_nodes);
  const BatchTableGuardChooser guard{&guards, streams.data(), K};
  const BatchTableLatencyChooser latency{&latencies, streams.data(), K};

  FlatBatchState state = kernel.initial_batch_state(K);
  std::uint64_t totals[K] = {};
  for (std::size_t t = 0; t < options.warmup_cycles; ++t) {
    kernel.step_batch<K>(state, guard, totals, latency);
  }
  std::fill(totals, totals + K, 0);  // discard the transient
  for (std::size_t t = 0; t < options.measure_cycles; ++t) {
    kernel.step_batch<K>(state, guard, totals, latency);
  }
  for (std::size_t r = 0; r < K; ++r) {
    thetas[r] = static_cast<double>(totals[r]) /
                (static_cast<double>(options.measure_cycles) *
                 static_cast<double>(num_nodes));
  }
}

/// One replication on the reference kernel (fallback for RRGs the flat
/// layout cannot represent, and the anchor of the differential tests).
/// Draws the same per-node streams through the same table arithmetic, so
/// theta is bit-identical to run_flat.
double run_reference(const Kernel& kernel, const GuardTable& guards,
                     const LatencyTable& latencies, std::uint64_t seed,
                     const SimOptions& options) {
  const std::size_t num_nodes = kernel.rrg().num_nodes();
  std::vector<Rng> streams = node_streams(seed, num_nodes);
  const Kernel::GuardChooser guard = [&](NodeId n) {
    return guards.sample(n, streams[n]);
  };
  const Kernel::LatencyChooser latency = [&](NodeId n) {
    return latencies.sample(n, streams[n]);
  };

  SyncState state = kernel.initial_state();
  for (std::size_t t = 0; t < options.warmup_cycles; ++t) {
    kernel.step(state, guard, latency);
  }
  std::uint64_t firings = 0;
  for (std::size_t t = 0; t < options.measure_cycles; ++t) {
    firings += kernel.step(state, guard, latency);
  }
  return static_cast<double>(firings) /
         (static_cast<double>(options.measure_cycles) *
          static_cast<double>(num_nodes));
}

/// Everything one unique job needs at execution time. Kernels and tables
/// are built once per unique job (on the submitting thread) and shared
/// read-only by all workers; per-run theta slots are written by exactly
/// one work slice each (disjoint ranges), so workers never contend.
/// The scheduling fields (`remaining`, `failure`) are guarded by the
/// fleet mutex.
struct JobContext {
  const Rrg* rrg = nullptr;
  SimOptions options;
  SimPath path = SimPath::kFlat;
  FlatCap fallback = FlatCap::kNone;
  std::size_t lane_cap = 1;  ///< batch width cap this job's slices use
  std::unique_ptr<Rrg> owned_rrg;  ///< owning submissions (kept alive here)
  std::unique_ptr<FlatKernel> flat_kernel;
  std::unique_ptr<Kernel> ref_kernel;
  std::unique_ptr<GuardTable> guards;
  std::unique_ptr<LatencyTable> latencies;
  std::vector<double> per_run;  ///< run-indexed theta slots

  std::size_t remaining = 0;  ///< slices still to finish (fleet mutex)
  std::exception_ptr failure;  ///< first slice failure (fleet mutex)
  /// Async contexts drop their kernels/tables/borrows once complete:
  /// the session cache keeps only the per_run results (cheap) while the
  /// heavy execution state is freed as soon as the last slice lands.
  bool release_on_done = false;

  /// Frees everything execution needed; per_run/path/fallback survive
  /// for report merging and the session cache.
  void release_execution_state() {
    flat_kernel.reset();
    ref_kernel.reset();
    guards.reset();
    latencies.reset();
    owned_rrg.reset();
    rrg = nullptr;  // the borrow (if any) ends with the job
  }
};

/// One queue entry: a contiguous slice of one unique job's runs, at most
/// lane_cap wide. Slices are fixed up front (greedy width partition per
/// job), so the partition -- and with it every run's lane assignment --
/// is independent of worker scheduling.
struct QueueEntry {
  JobContext* ctx = nullptr;
  std::uint32_t first = 0;
  std::uint32_t count = 0;
};

void execute_slice(JobContext& ctx, std::uint32_t first, std::uint32_t count) {
  double* const thetas = ctx.per_run.data() + first;
  if (ctx.path != SimPath::kFlat) {
    for (std::uint32_t r = 0; r < count; ++r) {
      thetas[r] = run_reference(*ctx.ref_kernel, *ctx.guards, *ctx.latencies,
                                run_seed(ctx.options.seed, first + r),
                                ctx.options);
    }
    return;
  }
  switch (count) {
    case 1:
      thetas[0] = run_flat(*ctx.flat_kernel, *ctx.guards, *ctx.latencies,
                           run_seed(ctx.options.seed, first), ctx.options);
      break;
    case 2:
      run_flat_batch<2>(*ctx.flat_kernel, *ctx.guards, *ctx.latencies,
                        ctx.options.seed, first, ctx.options, thetas);
      break;
    case 3:
      run_flat_batch<3>(*ctx.flat_kernel, *ctx.guards, *ctx.latencies,
                        ctx.options.seed, first, ctx.options, thetas);
      break;
    case 4:
      run_flat_batch<4>(*ctx.flat_kernel, *ctx.guards, *ctx.latencies,
                        ctx.options.seed, first, ctx.options, thetas);
      break;
    case 8:
      run_flat_batch<8>(*ctx.flat_kernel, *ctx.guards, *ctx.latencies,
                        ctx.options.seed, first, ctx.options, thetas);
      break;
    case 16:
      run_flat_batch<16>(*ctx.flat_kernel, *ctx.guards, *ctx.latencies,
                         ctx.options.seed, first, ctx.options, thetas);
      break;
    default:
      ELRR_ASSERT(false, "unsupported lane width ", count);
  }
}

namespace {

void append_bytes(std::string& key, const void* data, std::size_t size) {
  key.append(static_cast<const char*>(data), size);
}

template <class T>
void append_value(std::string& key, T value) {
  append_bytes(key, &value, sizeof(value));
}

/// Canonical byte key of (RRG content, simulation options): two jobs with
/// equal keys are guaranteed the same per-run thetas by the determinism
/// contract, so the fleet simulates one and fans the scores out. Covers
/// everything the simulation semantics read (structure, tokens, buffers,
/// gammas, kinds, telescopic parameters) plus the options fields that
/// select streams and windows.
std::string canonical_key(const Rrg& rrg, const SimOptions& options) {
  std::string key;
  key.reserve(rrg.num_nodes() * 12 + rrg.num_edges() * 24 + 64);
  append_value(key, static_cast<std::uint64_t>(rrg.num_nodes()));
  append_value(key, static_cast<std::uint64_t>(rrg.num_edges()));
  for (NodeId n = 0; n < rrg.num_nodes(); ++n) {
    append_value(key, static_cast<std::uint8_t>(rrg.kind(n)));
    const Telescopic& t = rrg.telescopic(n);
    append_value(key, static_cast<std::uint8_t>(t.enabled()));
    if (t.enabled()) {
      append_value(key, t.fast_prob);
      append_value(key, static_cast<std::int32_t>(t.slow_extra));
    }
  }
  const Digraph& g = rrg.graph();
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    append_value(key, static_cast<std::uint32_t>(g.src(e)));
    append_value(key, static_cast<std::uint32_t>(g.dst(e)));
    append_value(key, static_cast<std::int32_t>(rrg.tokens(e)));
    append_value(key, static_cast<std::int32_t>(rrg.buffers(e)));
    append_value(key, rrg.gamma(e));
  }
  append_value(key, options.seed);
  append_value(key, static_cast<std::uint64_t>(options.warmup_cycles));
  append_value(key, static_cast<std::uint64_t>(options.measure_cycles));
  append_value(key, static_cast<std::uint64_t>(options.runs));
  append_value(key, static_cast<std::uint8_t>(options.force_reference));
  return key;
}

/// Classifies the execution path and builds kernels, chooser tables,
/// result slots and the slice partition for one unique job. Runs on the
/// submitting thread (sync and async alike).
void build_context(JobContext& ctx, std::vector<QueueEntry>* entries) {
  ctx.fallback = ctx.options.force_reference
                     ? FlatCap::kNone
                     : FlatKernel::unsupported_reason(*ctx.rrg);
  if (ctx.options.force_reference) {
    ctx.path = SimPath::kReferenceForced;
  } else if (ctx.fallback != FlatCap::kNone) {
    ctx.path = SimPath::kReference;
  } else {
    ctx.path = SimPath::kFlat;
  }
  if (ctx.path == SimPath::kFlat) {
    ctx.flat_kernel = std::make_unique<FlatKernel>(*ctx.rrg);
    ctx.lane_cap = ctx.options.max_batch == 0
                       ? kDefaultLane
                       : std::min(ctx.options.max_batch, kMaxLane);
  } else {
    ctx.ref_kernel = std::make_unique<Kernel>(*ctx.rrg);
    ctx.lane_cap = 1;
  }
  ctx.guards = std::make_unique<GuardTable>(*ctx.rrg);
  ctx.latencies = std::make_unique<LatencyTable>(*ctx.rrg);
  ctx.per_run.assign(ctx.options.runs, 0.0);
  for (std::size_t first = 0; first < ctx.options.runs;) {
    const std::size_t width =
        next_slice_width(ctx.lane_cap, ctx.options.runs - first);
    entries->push_back(QueueEntry{&ctx, static_cast<std::uint32_t>(first),
                                  static_cast<std::uint32_t>(width)});
    first += width;
  }
  ctx.remaining = entries->size();  // sized by the caller per context
}

/// Merges one unique job's per-run thetas in run order -- neither the
/// queue interleaving, the pool size nor dedup can reach this reduction.
SimReport report_for(const JobContext& ctx) {
  RunningStats across_runs;
  for (const double theta : ctx.per_run) across_runs.add(theta);
  SimReport report;
  report.theta = across_runs.mean();
  report.stderr_theta = across_runs.stderr_mean();
  report.cycles = ctx.options.runs * ctx.options.measure_cycles;
  report.path = ctx.path;
  report.fallback = ctx.fallback;
  return report;
}

}  // namespace

/// Pool, queue and async-session state. Workers and the user thread meet
/// only here, under `mutex`:
///  * `queue` holds unclaimed slices; workers pop front, execute
///    unlocked, then decrement their context's `remaining` under the
///    lock and signal `cv_done` when a job finishes;
///  * drain() and the async waiters block on `cv_done` until the
///    contexts they care about hit remaining == 0 -- a claimed slice
///    therefore keeps its context storage alive until its completion is
///    visible under the mutex;
///  * the async session (`contexts`, `seen`, `tickets`) persists for the
///    fleet's lifetime: it is the cross-iteration result cache.
struct FleetCore {
  std::mutex mutex;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  std::vector<std::thread> pool;
  bool stop = false;
  std::deque<QueueEntry> queue;

  // Async session (user thread builds, workers only read ctx pointers).
  std::vector<std::unique_ptr<JobContext>> contexts;
  std::unordered_map<std::string, std::size_t> seen;  ///< canonical -> ctx
  std::vector<JobContext*> tickets;  ///< ticket id -> context
  std::size_t reported = 0;          ///< tickets consumed by wait_all
};

}  // namespace fleet_detail

using fleet_detail::FleetCore;
using fleet_detail::JobContext;
using fleet_detail::QueueEntry;

std::size_t resolve_worker_count(std::size_t requested, std::size_t hardware,
                                 std::size_t work_items) {
  // hardware_concurrency() is allowed to report 0 ("unknown"); never
  // under-spawn below one worker, never over-spawn past the queue.
  std::size_t workers = requested != 0 ? requested : hardware;
  if (workers == 0) workers = 1;
  return std::min(workers, std::max<std::size_t>(work_items, 1));
}

SimFleet::SimFleet(std::size_t threads, bool dedup)
    : threads_(threads), dedup_(dedup), core_(std::make_unique<FleetCore>()) {}

SimFleet::~SimFleet() {
  {
    const std::lock_guard<std::mutex> lock(core_->mutex);
    core_->stop = true;
    // Pending queue entries are abandoned (their contexts die with the
    // fleet); a slice a worker already claimed finishes first -- join
    // below cannot return before the worker's loop exits.
    core_->queue.clear();
  }
  core_->cv_work.notify_all();
  for (std::thread& worker : core_->pool) worker.join();
}

std::size_t SimFleet::pool_size() const { return core_->pool.size(); }

std::size_t SimFleet::hardware_concurrency_cached() {
  if (hardware_ == static_cast<std::size_t>(-1)) {
    hardware_ = std::thread::hardware_concurrency();
  }
  return hardware_;
}

std::size_t SimFleet::submit(const Rrg& rrg, const SimOptions& options) {
  ELRR_REQUIRE(options.measure_cycles > 0, "measure_cycles must be positive");
  ELRR_REQUIRE(options.runs > 0, "need at least one run");
  jobs_.push_back(Job{&rrg, options});
  return jobs_.size() - 1;
}

std::size_t SimFleet::submit(Rrg&& rrg, const SimOptions& options) {
  ELRR_REQUIRE(options.measure_cycles > 0, "measure_cycles must be positive");
  ELRR_REQUIRE(options.runs > 0, "need at least one run");
  sync_owned_.push_back(std::make_unique<Rrg>(std::move(rrg)));
  jobs_.push_back(Job{sync_owned_.back().get(), options});
  return jobs_.size() - 1;
}

void SimFleet::ensure_pool(std::size_t workers) {
  while (core_->pool.size() < workers) {
    core_->pool.emplace_back([this] { worker_main(); });
  }
}

void SimFleet::worker_main() {
  FleetCore& core = *core_;
  std::unique_lock<std::mutex> lock(core.mutex);
  for (;;) {
    core.cv_work.wait(lock, [&] { return core.stop || !core.queue.empty(); });
    if (core.stop) return;
    const QueueEntry entry = core.queue.front();
    core.queue.pop_front();
    JobContext& ctx = *entry.ctx;
    // A sibling slice already failed: skip the work, still complete the
    // slice so waiters (which rethrow the failure) unblock.
    const bool skip = ctx.failure != nullptr;
    lock.unlock();
    // A claimed slice keeps its context storage alive: every waiter
    // (drain, wait, wait_all) blocks until remaining == 0, which this
    // slice only signals after execution finished.
    std::exception_ptr failure;
    if (!skip) {
      try {
        fleet_detail::execute_slice(ctx, entry.first, entry.count);
      } catch (...) {
        failure = std::current_exception();
      }
    }
    lock.lock();
    if (failure && !ctx.failure) ctx.failure = failure;
    if (--ctx.remaining == 0) {
      if (ctx.release_on_done) ctx.release_execution_state();
      core.cv_done.notify_all();
    }
  }
}

std::vector<SimReport> SimFleet::drain() {
  if (jobs_.empty()) return {};
  // The queue empties no matter how this drain ends (success, a job
  // exception on either the inline or the pooled path, a context-build
  // throw): a failed drain never leaks its jobs into the next one. The
  // owned candidates of this drain die with it too (after execution).
  const std::vector<Job> jobs = std::move(jobs_);
  jobs_.clear();
  struct OwnedGuard {
    std::vector<std::unique_ptr<Rrg>>* owned;
    ~OwnedGuard() { owned->clear(); }
  } owned_guard{&sync_owned_};

  // Deduplicate: jobs whose canonical (rrg content, options) key matches
  // an earlier submission share that submission's context -- one
  // simulation, results fanned out below. Precompute every unique job's
  // kernel, tables and slice partition. The lane cap is per job:
  // options.max_batch == 0 means the driver default, anything else
  // clamps (1 = solo stepping); reference-path jobs go run by run (the
  // reference kernel has no batched stepper).
  std::vector<std::size_t> group(jobs.size());
  std::deque<JobContext> contexts;  // stable addresses for queue entries
  {
    std::unordered_map<std::string, std::size_t> seen;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (dedup_) {
        const std::string key =
            fleet_detail::canonical_key(*jobs[j].rrg, jobs[j].options);
        const auto [it, inserted] = seen.emplace(key, contexts.size());
        group[j] = it->second;
        if (!inserted) continue;
      } else {
        group[j] = contexts.size();
      }
      contexts.emplace_back();
      JobContext& ctx = contexts.back();
      ctx.rrg = jobs[j].rrg;
      ctx.options = jobs[j].options;
    }
  }
  last_unique_ = contexts.size();

  std::vector<QueueEntry> entries;
  for (JobContext& ctx : contexts) {
    std::vector<QueueEntry> slices;
    fleet_detail::build_context(ctx, &slices);
    entries.insert(entries.end(), slices.begin(), slices.end());
  }

  // An explicit thread request never consults hardware_concurrency():
  // the queried value is irrelevant then, and the call is not free on
  // every drain of a hot flow loop.
  const std::size_t hardware =
      threads_ == 0 ? std::thread::hardware_concurrency() : 0;
  const std::size_t workers =
      resolve_worker_count(threads_, hardware, entries.size());
  last_workers_ = workers;
  if (workers <= 1) {
    for (const QueueEntry& entry : entries) {
      fleet_detail::execute_slice(*entry.ctx, entry.first, entry.count);
    }
  } else {
    ensure_pool(workers);
    {
      std::unique_lock<std::mutex> lock(core_->mutex);
      for (const QueueEntry& entry : entries) {
        core_->queue.push_back(entry);
      }
      core_->cv_work.notify_all();
      core_->cv_done.wait(lock, [&] {
        for (const JobContext& ctx : contexts) {
          if (ctx.remaining != 0) return false;
        }
        return true;
      });
    }
    // Rethrow the first failure in context (submission) order --
    // deterministic regardless of which worker hit it first.
    for (JobContext& ctx : contexts) {
      if (ctx.failure) std::rethrow_exception(ctx.failure);
    }
  }

  // Merge in run order, job by job (each through its unique context):
  // neither the queue interleaving, the pool size nor dedup can reach
  // this reduction.
  std::vector<SimReport> reports;
  reports.reserve(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    reports.push_back(fleet_detail::report_for(contexts[group[j]]));
  }
  return reports;
}

SimTicket SimFleet::submit_async(const Rrg& rrg, const SimOptions& options) {
  return enqueue_async(&rrg, options, nullptr);
}

SimTicket SimFleet::submit_async(Rrg&& rrg, const SimOptions& options) {
  auto owned = std::make_unique<Rrg>(std::move(rrg));
  const Rrg* ptr = owned.get();
  return enqueue_async(ptr, options, std::move(owned));
}

SimTicket SimFleet::enqueue_async(const Rrg* rrg, const SimOptions& options,
                                  std::unique_ptr<Rrg> owned) {
  ELRR_REQUIRE(options.measure_cycles > 0, "measure_cycles must be positive");
  ELRR_REQUIRE(options.runs > 0, "need at least one run");
  FleetCore& core = *core_;

  // Session cache hit: an identical candidate was already submitted
  // (possibly iterations ago, possibly already finished) -- the new
  // ticket simply aliases its context. No new work enters the queue.
  std::string key;
  if (dedup_) {
    key = fleet_detail::canonical_key(*rrg, options);
    const auto it = core.seen.find(key);
    if (it != core.seen.end()) {
      const SimTicket ticket{core.tickets.size()};
      core.tickets.push_back(core.contexts[it->second].get());
      return ticket;
    }
  }

  auto fresh = std::make_unique<JobContext>();
  fresh->rrg = rrg;
  fresh->options = options;
  fresh->owned_rrg = std::move(owned);
  fresh->release_on_done = true;
  std::vector<QueueEntry> slices;
  fleet_detail::build_context(*fresh, &slices);

  if (dedup_) core.seen.emplace(std::move(key), core.contexts.size());
  const SimTicket ticket{core.tickets.size()};
  core.tickets.push_back(fresh.get());
  core.contexts.push_back(std::move(fresh));

  std::size_t backlog = 0;
  {
    const std::lock_guard<std::mutex> lock(core.mutex);
    for (const QueueEntry& slice : slices) core.queue.push_back(slice);
    backlog = core.queue.size();
  }
  // Async work always runs on the pool (that is the point: the caller's
  // thread keeps optimizing); grow it to cover the queued backlog up to
  // the configured width. 0 = hardware concurrency, queried once.
  ensure_pool(resolve_worker_count(
      threads_, threads_ == 0 ? hardware_concurrency_cached() : 0, backlog));
  core.cv_work.notify_all();
  return ticket;
}

bool SimFleet::poll(SimTicket ticket) const {
  FleetCore& core = *core_;
  const std::lock_guard<std::mutex> lock(core.mutex);
  ELRR_REQUIRE(ticket.valid() && ticket.id < core.tickets.size(),
               "invalid simulation ticket");
  return core.tickets[ticket.id]->remaining == 0;
}

SimReport SimFleet::wait(SimTicket ticket) {
  FleetCore& core = *core_;
  std::unique_lock<std::mutex> lock(core.mutex);
  ELRR_REQUIRE(ticket.valid() && ticket.id < core.tickets.size(),
               "invalid simulation ticket");
  JobContext& ctx = *core.tickets[ticket.id];
  core.cv_done.wait(lock, [&] { return ctx.remaining == 0; });
  if (ctx.failure) std::rethrow_exception(ctx.failure);
  return fleet_detail::report_for(ctx);
}

std::vector<SimReport> SimFleet::wait_all() {
  FleetCore& core = *core_;
  std::unique_lock<std::mutex> lock(core.mutex);
  core.cv_done.wait(lock, [&] {
    for (const auto& ctx : core.contexts) {
      if (ctx->remaining != 0) return false;
    }
    return true;
  });
  // The wave is consumed whether it succeeded or not: a failed ticket
  // rethrows (first in ticket order, deterministically) but never wedges
  // later wait_all() calls -- `reported` advances past the wave first,
  // and individual results stay retrievable through wait(ticket).
  std::vector<SimReport> reports;
  reports.reserve(core.tickets.size() - core.reported);
  std::exception_ptr failure;
  for (std::size_t t = core.reported; t < core.tickets.size(); ++t) {
    const JobContext& ctx = *core.tickets[t];
    if (ctx.failure) {
      if (!failure) failure = ctx.failure;
      continue;
    }
    reports.push_back(fleet_detail::report_for(ctx));
  }
  core.reported = core.tickets.size();
  if (failure) std::rethrow_exception(failure);
  return reports;
}

std::size_t SimFleet::async_pending() const {
  FleetCore& core = *core_;
  const std::lock_guard<std::mutex> lock(core.mutex);
  std::size_t pending = 0;
  for (const auto& ctx : core.contexts) {
    if (ctx->remaining != 0) ++pending;
  }
  return pending;
}

std::size_t SimFleet::async_cache_size() const {
  FleetCore& core = *core_;
  const std::lock_guard<std::mutex> lock(core.mutex);
  return core.contexts.size();
}

}  // namespace elrr::sim
