#include "sim/fleet.hpp"

#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/choosers.hpp"
#include "sim/flat_kernel.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace elrr::sim {

namespace {

/// Widest step_batch lane pack the driver uses (instruction-level
/// parallelism across runs; see FlatBatchState). Wider packs stop paying
/// on current cores while growing the state working set.
inline constexpr std::size_t kMaxBatch = 4;

/// Independent per-node streams, derived exactly like the reference
/// driver always has: one master stream split once per node, so adding a
/// node does not perturb the others' select sequences.
std::vector<Rng> node_streams(std::uint64_t seed, std::size_t num_nodes) {
  Rng master(seed);
  std::vector<Rng> streams;
  streams.reserve(num_nodes);
  for (std::size_t n = 0; n < num_nodes; ++n) streams.push_back(master.split());
  return streams;
}

/// One full replication on the flat fast path: templated choosers, no
/// allocation after the stream setup.
double run_flat(const FlatKernel& kernel, const GuardTable& guards,
                const LatencyTable& latencies, std::uint64_t seed,
                const SimOptions& options) {
  const std::size_t num_nodes = kernel.num_nodes();
  std::vector<Rng> streams = node_streams(seed, num_nodes);
  const TableGuardChooser guard{&guards, streams.data()};
  const TableLatencyChooser latency{&latencies, streams.data()};

  FlatState state = kernel.initial_state();
  for (std::size_t t = 0; t < options.warmup_cycles; ++t) {
    kernel.step(state, guard, latency);
  }
  std::uint64_t firings = 0;
  for (std::size_t t = 0; t < options.measure_cycles; ++t) {
    firings += kernel.step(state, guard, latency);
  }
  return static_cast<double>(firings) /
         (static_cast<double>(options.measure_cycles) *
          static_cast<double>(num_nodes));
}

/// Up to kMaxBatch replications interleaved through one FlatKernel pass.
/// Each run draws from the same streams the solo path would, so per-run
/// theta is bit-identical to run_flat -- telescopic graphs included (the
/// batched stepper carries per-lane busy countdowns, and each lane's
/// latency draws come from its own run-private streams).
template <std::size_t K>
void run_flat_batch(const FlatKernel& kernel, const GuardTable& guards,
                    const LatencyTable& latencies, std::uint64_t sim_seed,
                    std::size_t first_run, const SimOptions& options,
                    double* thetas) {
  const std::size_t num_nodes = kernel.num_nodes();
  std::vector<Rng> streams;
  streams.reserve(K * num_nodes);
  for (std::size_t r = 0; r < K; ++r) {
    Rng master(run_seed(sim_seed, first_run + r));
    for (std::size_t n = 0; n < num_nodes; ++n) {
      streams.push_back(master.split());
    }
  }
  const BatchTableGuardChooser guard{&guards, streams.data(), num_nodes};
  const BatchTableLatencyChooser latency{&latencies, streams.data(),
                                         num_nodes};

  FlatBatchState state = kernel.initial_batch_state(K);
  std::uint64_t totals[K] = {};
  for (std::size_t t = 0; t < options.warmup_cycles; ++t) {
    kernel.step_batch<K>(state, guard, totals, latency);
  }
  std::fill(totals, totals + K, 0);  // discard the transient
  for (std::size_t t = 0; t < options.measure_cycles; ++t) {
    kernel.step_batch<K>(state, guard, totals, latency);
  }
  for (std::size_t r = 0; r < K; ++r) {
    thetas[r] = static_cast<double>(totals[r]) /
                (static_cast<double>(options.measure_cycles) *
                 static_cast<double>(num_nodes));
  }
}

/// One replication on the reference kernel (fallback for RRGs the flat
/// layout cannot represent, and the anchor of the differential tests).
/// Draws the same per-node streams through the same table arithmetic, so
/// theta is bit-identical to run_flat.
double run_reference(const Kernel& kernel, const GuardTable& guards,
                     const LatencyTable& latencies, std::uint64_t seed,
                     const SimOptions& options) {
  const std::size_t num_nodes = kernel.rrg().num_nodes();
  std::vector<Rng> streams = node_streams(seed, num_nodes);
  const Kernel::GuardChooser guard = [&](NodeId n) {
    return guards.sample(n, streams[n]);
  };
  const Kernel::LatencyChooser latency = [&](NodeId n) {
    return latencies.sample(n, streams[n]);
  };

  SyncState state = kernel.initial_state();
  for (std::size_t t = 0; t < options.warmup_cycles; ++t) {
    kernel.step(state, guard, latency);
  }
  std::uint64_t firings = 0;
  for (std::size_t t = 0; t < options.measure_cycles; ++t) {
    firings += kernel.step(state, guard, latency);
  }
  return static_cast<double>(firings) /
         (static_cast<double>(options.measure_cycles) *
          static_cast<double>(num_nodes));
}

/// Everything one job needs at execution time. Kernels and tables are
/// built once per job and shared read-only by all workers; per-run theta
/// slots are written by exactly one work item each (disjoint ranges), so
/// workers never contend.
struct JobContext {
  const Rrg* rrg = nullptr;
  SimOptions options;
  SimPath path = SimPath::kFlat;
  FlatCap fallback = FlatCap::kNone;
  std::size_t lane_cap = 1;  ///< batch width this job's slices use
  std::unique_ptr<FlatKernel> flat_kernel;
  std::unique_ptr<Kernel> ref_kernel;
  std::unique_ptr<GuardTable> guards;
  std::unique_ptr<LatencyTable> latencies;
  std::vector<double> per_run;  ///< run-indexed theta slots
};

/// One queue entry: a contiguous slice of one job's runs, at most
/// lane_cap wide. Slices are fixed up front ([0,c) [c,2c) ... per job),
/// so the partition -- and with it every run's lane assignment -- is
/// independent of worker scheduling.
struct WorkItem {
  std::uint32_t job = 0;
  std::uint32_t first = 0;
  std::uint32_t count = 0;
};

void execute_item(JobContext& ctx, const WorkItem& item) {
  double* const thetas = ctx.per_run.data() + item.first;
  if (ctx.path != SimPath::kFlat) {
    for (std::uint32_t r = 0; r < item.count; ++r) {
      thetas[r] = run_reference(*ctx.ref_kernel, *ctx.guards, *ctx.latencies,
                                run_seed(ctx.options.seed, item.first + r),
                                ctx.options);
    }
    return;
  }
  switch (item.count) {
    case 1:
      thetas[0] = run_flat(*ctx.flat_kernel, *ctx.guards, *ctx.latencies,
                           run_seed(ctx.options.seed, item.first),
                           ctx.options);
      break;
    case 2:
      run_flat_batch<2>(*ctx.flat_kernel, *ctx.guards, *ctx.latencies,
                        ctx.options.seed, item.first, ctx.options, thetas);
      break;
    case 3:
      run_flat_batch<3>(*ctx.flat_kernel, *ctx.guards, *ctx.latencies,
                        ctx.options.seed, item.first, ctx.options, thetas);
      break;
    default:
      run_flat_batch<4>(*ctx.flat_kernel, *ctx.guards, *ctx.latencies,
                        ctx.options.seed, item.first, ctx.options, thetas);
      break;
  }
}

}  // namespace

std::size_t resolve_worker_count(std::size_t requested, std::size_t hardware,
                                 std::size_t work_items) {
  // hardware_concurrency() is allowed to report 0 ("unknown"); never
  // under-spawn below one worker, never over-spawn past the queue.
  std::size_t workers = requested != 0 ? requested : hardware;
  if (workers == 0) workers = 1;
  return std::min(workers, std::max<std::size_t>(work_items, 1));
}

std::size_t SimFleet::submit(const Rrg& rrg, const SimOptions& options) {
  ELRR_REQUIRE(options.measure_cycles > 0, "measure_cycles must be positive");
  ELRR_REQUIRE(options.runs > 0, "need at least one run");
  jobs_.push_back(Job{&rrg, options});
  return jobs_.size() - 1;
}

std::vector<SimReport> SimFleet::drain() {
  if (jobs_.empty()) return {};

  // Precompute every job's kernel, tables and slice partition. The lane
  // cap is per job: options.max_batch == 0 means the driver default,
  // anything else clamps (1 = solo stepping); reference-path jobs go run
  // by run (the reference kernel has no batched stepper).
  std::vector<JobContext> contexts(jobs_.size());
  std::vector<WorkItem> items;
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    JobContext& ctx = contexts[j];
    ctx.rrg = jobs_[j].rrg;
    ctx.options = jobs_[j].options;
    ctx.fallback = ctx.options.force_reference
                       ? FlatCap::kNone
                       : FlatKernel::unsupported_reason(*ctx.rrg);
    if (ctx.options.force_reference) {
      ctx.path = SimPath::kReferenceForced;
    } else if (ctx.fallback != FlatCap::kNone) {
      ctx.path = SimPath::kReference;
    } else {
      ctx.path = SimPath::kFlat;
    }
    if (ctx.path == SimPath::kFlat) {
      ctx.flat_kernel = std::make_unique<FlatKernel>(*ctx.rrg);
      ctx.lane_cap = ctx.options.max_batch == 0
                         ? kMaxBatch
                         : std::min(ctx.options.max_batch, kMaxBatch);
    } else {
      ctx.ref_kernel = std::make_unique<Kernel>(*ctx.rrg);
      ctx.lane_cap = 1;
    }
    ctx.guards = std::make_unique<GuardTable>(*ctx.rrg);
    ctx.latencies = std::make_unique<LatencyTable>(*ctx.rrg);
    ctx.per_run.assign(ctx.options.runs, 0.0);
    for (std::size_t first = 0; first < ctx.options.runs;
         first += ctx.lane_cap) {
      items.push_back(WorkItem{
          static_cast<std::uint32_t>(j), static_cast<std::uint32_t>(first),
          static_cast<std::uint32_t>(
              std::min(ctx.lane_cap, ctx.options.runs - first))});
    }
  }

  const std::size_t workers = resolve_worker_count(
      threads_, std::thread::hardware_concurrency(), items.size());
  last_workers_ = workers;
  if (workers <= 1) {
    for (const WorkItem& item : items) execute_item(contexts[item.job], item);
  } else {
    std::atomic<std::size_t> next{0};
    std::exception_ptr failure;
    std::mutex failure_mutex;
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        try {
          for (std::size_t i = next.fetch_add(1); i < items.size();
               i = next.fetch_add(1)) {
            execute_item(contexts[items[i].job], items[i]);
          }
        } catch (...) {
          const std::lock_guard<std::mutex> lock(failure_mutex);
          if (!failure) failure = std::current_exception();
          next.store(items.size());  // drain remaining work
        }
      });
    }
    for (std::thread& worker : pool) worker.join();
    if (failure) std::rethrow_exception(failure);
  }

  // Merge in run order, job by job: neither the queue interleaving nor
  // the pool size can reach this reduction.
  std::vector<SimReport> reports;
  reports.reserve(contexts.size());
  for (const JobContext& ctx : contexts) {
    RunningStats across_runs;
    for (const double theta : ctx.per_run) across_runs.add(theta);
    SimReport report;
    report.theta = across_runs.mean();
    report.stderr_theta = across_runs.stderr_mean();
    report.cycles = ctx.options.runs * ctx.options.measure_cycles;
    report.path = ctx.path;
    report.fallback = ctx.fallback;
    reports.push_back(report);
  }
  jobs_.clear();
  return reports;
}

}  // namespace elrr::sim
