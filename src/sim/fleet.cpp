#include "sim/fleet.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <exception>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "io/rrg_format.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "sim/choosers.hpp"
#include "sim/proc_fleet.hpp"
#include "support/bytes.hpp"
#include "sim/flat_kernel.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace elrr::sim {

namespace fleet_detail {

/// Default step_batch lane pack (SSE-width int32 vectors) and the widest
/// one the driver instantiates. Wider packs help hosts with wider SIMD
/// (build with -DELRR_NATIVE=ON) and workloads with many runs per
/// candidate; SimOptions::max_batch picks per job.
inline constexpr std::size_t kDefaultLane = 4;
inline constexpr std::size_t kMaxLane = 16;

/// The slice widths execute_slice can step directly (descending). A job's
/// runs are packed greedily: the widest allowed width first, remainders
/// through the narrower ones, so any (runs, lane_cap) pair partitions
/// into supported widths. The partition is fixed up front per job --
/// independent of worker scheduling -- and lane packing never changes
/// results (every run draws from run-private streams).
inline constexpr std::size_t kLaneWidths[] = {16, 8, 4, 3, 2, 1};

std::size_t next_slice_width(std::size_t lane_cap, std::size_t remaining) {
  for (const std::size_t w : kLaneWidths) {
    if (w <= lane_cap && w <= remaining) return w;
  }
  return 1;
}

/// Independent per-node streams, derived exactly like the reference
/// driver always has: one master stream split once per node, so adding a
/// node does not perturb the others' select sequences.
std::vector<Rng> node_streams(std::uint64_t seed, std::size_t num_nodes) {
  Rng master(seed);
  std::vector<Rng> streams;
  streams.reserve(num_nodes);
  for (std::size_t n = 0; n < num_nodes; ++n) streams.push_back(master.split());
  return streams;
}

/// One full replication on the flat fast path: templated choosers, no
/// allocation after the stream setup.
double run_flat(const FlatKernel& kernel, const GuardTable& guards,
                const LatencyTable& latencies, std::uint64_t seed,
                const SimOptions& options) {
  const std::size_t num_nodes = kernel.num_nodes();
  std::vector<Rng> streams = node_streams(seed, num_nodes);
  const TableGuardChooser guard{&guards, streams.data()};
  const TableLatencyChooser latency{&latencies, streams.data()};

  FlatState state = kernel.initial_state();
  for (std::size_t t = 0; t < options.warmup_cycles; ++t) {
    kernel.step(state, guard, latency);
  }
  std::uint64_t firings = 0;
  for (std::size_t t = 0; t < options.measure_cycles; ++t) {
    firings += kernel.step(state, guard, latency);
  }
  return static_cast<double>(firings) /
         (static_cast<double>(options.measure_cycles) *
          static_cast<double>(num_nodes));
}

/// K replications interleaved through one FlatKernel pass. Each run
/// draws from the same streams the solo path would (RunStreams derives
/// them master-per-run, node-major), so per-run theta is bit-identical
/// to run_flat for every lane width -- telescopic graphs included (the
/// batched stepper carries per-lane busy countdowns, and each lane's
/// latency draws come from its own run-private streams).
template <std::size_t K>
void run_flat_batch(const FlatKernel& kernel, const GuardTable& guards,
                    const LatencyTable& latencies, std::uint64_t sim_seed,
                    std::size_t first_run, const SimOptions& options,
                    double* thetas) {
  const std::size_t num_nodes = kernel.num_nodes();
  std::uint64_t seeds[K];
  for (std::size_t r = 0; r < K; ++r) {
    seeds[r] = run_seed(sim_seed, first_run + r);
  }
  RunStreams streams(seeds, K, num_nodes);
  const BatchTableGuardChooser guard{&guards, streams.data(), K};
  const BatchTableLatencyChooser latency{&latencies, streams.data(), K};

  FlatBatchState state = kernel.initial_batch_state(K);
  std::uint64_t totals[K] = {};
  for (std::size_t t = 0; t < options.warmup_cycles; ++t) {
    kernel.step_batch<K>(state, guard, totals, latency);
  }
  std::fill(totals, totals + K, 0);  // discard the transient
  for (std::size_t t = 0; t < options.measure_cycles; ++t) {
    kernel.step_batch<K>(state, guard, totals, latency);
  }
  for (std::size_t r = 0; r < K; ++r) {
    thetas[r] = static_cast<double>(totals[r]) /
                (static_cast<double>(options.measure_cycles) *
                 static_cast<double>(num_nodes));
  }
}

/// One replication on the reference kernel (fallback for RRGs the flat
/// layout cannot represent, and the anchor of the differential tests).
/// Draws the same per-node streams through the same table arithmetic, so
/// theta is bit-identical to run_flat.
double run_reference(const Kernel& kernel, const GuardTable& guards,
                     const LatencyTable& latencies, std::uint64_t seed,
                     const SimOptions& options) {
  const std::size_t num_nodes = kernel.rrg().num_nodes();
  std::vector<Rng> streams = node_streams(seed, num_nodes);
  const Kernel::GuardChooser guard = [&](NodeId n) {
    return guards.sample(n, streams[n]);
  };
  const Kernel::LatencyChooser latency = [&](NodeId n) {
    return latencies.sample(n, streams[n]);
  };

  SyncState state = kernel.initial_state();
  for (std::size_t t = 0; t < options.warmup_cycles; ++t) {
    kernel.step(state, guard, latency);
  }
  std::uint64_t firings = 0;
  for (std::size_t t = 0; t < options.measure_cycles; ++t) {
    firings += kernel.step(state, guard, latency);
  }
  return static_cast<double>(firings) /
         (static_cast<double>(options.measure_cycles) *
          static_cast<double>(num_nodes));
}

/// Everything one unique job needs at execution time. Kernels and tables
/// are built once per unique job (on the submitting thread) and shared
/// read-only by all workers; per-run theta slots are written by exactly
/// one work slice each (disjoint ranges), so workers never contend.
/// The scheduling fields (`remaining`, `failure`) are guarded by the
/// fleet mutex. Contexts are shared-ownership: queue slices, tickets and
/// the dedup cache each hold a reference, so neither ticket release nor
/// cache eviction can free a job a worker still executes.
struct JobContext {
  /// `remaining` value of a reserved-but-not-yet-built async context
  /// (two-phase submission: the cache entry is visible -- and aliasable
  /// -- while the kernels build outside the lock).
  static constexpr std::size_t kBuilding = static_cast<std::size_t>(-1);

  const Rrg* rrg = nullptr;
  SimOptions options;
  SimPath path = SimPath::kFlat;
  FlatCap fallback = FlatCap::kNone;
  std::size_t lane_cap = 1;  ///< batch width cap this job's slices use
  std::unique_ptr<Rrg> owned_rrg;  ///< owning submissions (kept alive here)
  std::unique_ptr<FlatKernel> flat_kernel;
  std::unique_ptr<Kernel> ref_kernel;
  std::unique_ptr<GuardTable> guards;
  std::unique_ptr<LatencyTable> latencies;
  std::vector<double> per_run;  ///< run-indexed theta slots

  std::size_t remaining = 0;  ///< slices still to finish (fleet mutex)
  std::exception_ptr failure;  ///< first slice failure (fleet mutex)
  /// Proc tier: the candidate's .rrg text, serialized once (first slice
  /// dispatch) and shared by every slice and re-dispatch of this job.
  std::once_flag rrg_text_once;
  std::string rrg_text;
  /// Flat-path containment: a slice whose FlatKernel execution throws is
  /// re-run on the reference kernel (built on demand, once) instead of
  /// failing the job. The reference path draws the identical per-run
  /// seeds, so a degraded slice's thetas are bit-identical to the flat
  /// ones -- degradation is observable only through this counter.
  std::once_flag ref_fallback_once;
  std::atomic<std::uint32_t> degraded_slices{0};
  /// Async contexts drop their kernels/tables/borrows once complete:
  /// the session cache keeps only the per_run results (cheap) while the
  /// heavy execution state is freed as soon as the last slice lands.
  /// Also the "this context counts toward in_flight" marker.
  bool release_on_done = false;

  bool done() const { return remaining == 0; }

  /// Frees everything execution needed; per_run/path/fallback survive
  /// for report merging and the session cache.
  void release_execution_state() {
    flat_kernel.reset();
    ref_kernel.reset();
    guards.reset();
    latencies.reset();
    owned_rrg.reset();
    rrg = nullptr;  // the borrow (if any) ends with the job
    rrg_text.clear();
    rrg_text.shrink_to_fit();
  }
};

/// One queue entry: a contiguous slice of one unique job's runs, at most
/// lane_cap wide. Slices are fixed up front (greedy width partition per
/// job), so the partition -- and with it every run's lane assignment --
/// is independent of worker scheduling. The shared_ptr keeps the context
/// alive while the slice sits in the queue or executes, whatever happens
/// to tickets and cache entries meanwhile.
struct QueueEntry {
  std::shared_ptr<JobContext> ctx;
  std::uint32_t first = 0;
  std::uint32_t count = 0;
};

void run_reference_slice(JobContext& ctx, std::uint32_t first,
                         std::uint32_t count) {
  double* const thetas = ctx.per_run.data() + first;
  for (std::uint32_t r = 0; r < count; ++r) {
    thetas[r] = run_reference(*ctx.ref_kernel, *ctx.guards, *ctx.latencies,
                              run_seed(ctx.options.seed, first + r),
                              ctx.options);
  }
}

/// Flat execution of one slice; throws on a FlatKernel fault (including
/// the `fleet.flat` injection site). Split out so execute_slice can
/// contain the fault and re-run the slice on the reference kernel.
void run_flat_slice(JobContext& ctx, std::uint32_t first,
                    std::uint32_t count) {
  failpoint::trip("fleet.flat");
  double* const thetas = ctx.per_run.data() + first;
  switch (count) {
    case 1:
      thetas[0] = run_flat(*ctx.flat_kernel, *ctx.guards, *ctx.latencies,
                           run_seed(ctx.options.seed, first), ctx.options);
      break;
    case 2:
      run_flat_batch<2>(*ctx.flat_kernel, *ctx.guards, *ctx.latencies,
                        ctx.options.seed, first, ctx.options, thetas);
      break;
    case 3:
      run_flat_batch<3>(*ctx.flat_kernel, *ctx.guards, *ctx.latencies,
                        ctx.options.seed, first, ctx.options, thetas);
      break;
    case 4:
      run_flat_batch<4>(*ctx.flat_kernel, *ctx.guards, *ctx.latencies,
                        ctx.options.seed, first, ctx.options, thetas);
      break;
    case 8:
      run_flat_batch<8>(*ctx.flat_kernel, *ctx.guards, *ctx.latencies,
                        ctx.options.seed, first, ctx.options, thetas);
      break;
    case 16:
      run_flat_batch<16>(*ctx.flat_kernel, *ctx.guards, *ctx.latencies,
                         ctx.options.seed, first, ctx.options, thetas);
      break;
    default:
      ELRR_ASSERT(false, "unsupported lane width ", count);
  }
}

void execute_slice(JobContext& ctx, std::uint32_t first, std::uint32_t count) {
  if (ctx.path != SimPath::kFlat) {
    run_reference_slice(ctx, first, count);
    return;
  }
  try {
    run_flat_slice(ctx, first, count);
  } catch (...) {
    // Per-slice graceful degradation: a flat-path fault costs one
    // reference re-run of this slice, not the job. The reference kernel
    // is built lazily (most jobs never need it) and exactly once even
    // when several slices of the same job fault concurrently; guards,
    // latency tables and per-run seeds are shared with the flat path, so
    // the recomputed thetas are bit-identical and the job's report --
    // aside from degraded_slices -- is indistinguishable from a clean
    // run. A *reference* fault here is not containable and propagates.
    std::call_once(ctx.ref_fallback_once, [&ctx] {
      ctx.ref_kernel = std::make_unique<Kernel>(*ctx.rrg);
    });
    run_reference_slice(ctx, first, count);
    ctx.degraded_slices.fetch_add(1, std::memory_order_relaxed);
  }
}

namespace {

using bytes::append_value;

/// Canonical byte key of (RRG content, simulation options): two jobs with
/// equal keys are guaranteed the same per-run thetas by the determinism
/// contract, so the fleet simulates one and fans the scores out. Covers
/// everything the simulation semantics read (canonical_rrg_key) plus the
/// options fields that select streams and windows.
std::string canonical_key(const Rrg& rrg, const SimOptions& options) {
  std::string key = canonical_rrg_key(rrg);
  append_value(key, options.seed);
  append_value(key, static_cast<std::uint64_t>(options.warmup_cycles));
  append_value(key, static_cast<std::uint64_t>(options.measure_cycles));
  append_value(key, static_cast<std::uint64_t>(options.runs));
  append_value(key, static_cast<std::uint8_t>(options.force_reference));
  return key;
}

/// Classifies the execution path and builds kernels, chooser tables,
/// result slots and the slice partition for one unique job. Runs on the
/// submitting thread (sync and async alike), outside the fleet mutex.
/// `build_kernels = false` (the proc tier) skips the kernel and chooser
/// construction: classification, result slots and the slice partition
/// still happen here -- identically, so the partition and the report
/// metadata cannot depend on the tier -- but the execution state lives
/// in the worker *process* (SliceRunner), and building it again in the
/// supervisor would double the isolation overhead for nothing.
void build_context(JobContext& ctx, std::vector<QueueEntry>* entries,
                   const std::shared_ptr<JobContext>& self,
                   bool build_kernels = true) {
  ctx.fallback = ctx.options.force_reference
                     ? FlatCap::kNone
                     : FlatKernel::unsupported_reason(*ctx.rrg);
  if (ctx.options.force_reference) {
    ctx.path = SimPath::kReferenceForced;
  } else if (ctx.fallback != FlatCap::kNone) {
    ctx.path = SimPath::kReference;
  } else {
    ctx.path = SimPath::kFlat;
  }
  if (ctx.path == SimPath::kFlat) {
    if (build_kernels) ctx.flat_kernel = std::make_unique<FlatKernel>(*ctx.rrg);
    ctx.lane_cap = ctx.options.max_batch == 0
                       ? kDefaultLane
                       : std::min(ctx.options.max_batch, kMaxLane);
  } else {
    if (build_kernels) ctx.ref_kernel = std::make_unique<Kernel>(*ctx.rrg);
    ctx.lane_cap = 1;
  }
  if (build_kernels) {
    ctx.guards = std::make_unique<GuardTable>(*ctx.rrg);
    ctx.latencies = std::make_unique<LatencyTable>(*ctx.rrg);
  }
  ctx.per_run.assign(ctx.options.runs, 0.0);
  for (std::size_t first = 0; first < ctx.options.runs;) {
    const std::size_t width =
        next_slice_width(ctx.lane_cap, ctx.options.runs - first);
    entries->push_back(QueueEntry{self, static_cast<std::uint32_t>(first),
                                  static_cast<std::uint32_t>(width)});
    first += width;
  }
}

/// Merges one unique job's per-run thetas in run order -- neither the
/// queue interleaving, the pool size nor dedup can reach this reduction.
SimReport report_for(const JobContext& ctx) {
  RunningStats across_runs;
  for (const double theta : ctx.per_run) across_runs.add(theta);
  SimReport report;
  report.theta = across_runs.mean();
  report.stderr_theta = across_runs.stderr_mean();
  report.cycles = ctx.options.runs * ctx.options.measure_cycles;
  report.path = ctx.path;
  report.fallback = ctx.fallback;
  report.degraded_slices =
      ctx.degraded_slices.load(std::memory_order_relaxed);
  return report;
}

/// Bytes one cache entry is accounted at: its key, the context struct and
/// the per-run result slots (the state that survives completion; kernels
/// and tables are freed when the last slice lands).
std::size_t entry_bytes(const std::string& key, const JobContext& ctx) {
  return key.size() + sizeof(JobContext) + ctx.options.runs * sizeof(double) +
         64;  // map/list node overhead, amortized
}

}  // namespace

/// Pool, queue and async-session state. Workers and client threads meet
/// only here, under `mutex`:
///  * `queue` holds unclaimed slices; workers pop front, execute
///    unlocked, then decrement their context's `remaining` under the
///    lock and signal `cv_done` when a job finishes;
///  * drain() and the async waiters block on `cv_done` until the
///    contexts they care about complete -- a claimed slice holds a
///    shared_ptr, so context storage outlives its execution no matter
///    what tickets or the cache do meanwhile;
///  * the async session -- the LRU dedup `cache` and the `tickets`
///    table -- persists for the fleet's lifetime and is fully guarded by
///    `mutex`: any number of client threads may submit/poll/wait/release
///    concurrently (multi-client sharing, the svc::Scheduler shape).
struct FleetCore {
  struct CacheEntry {
    std::shared_ptr<JobContext> ctx;
    std::list<const std::string*>::iterator lru;
    std::size_t bytes = 0;
  };

  /// Heartbeat of one pool worker: set under `mutex` when a slice is
  /// claimed, cleared when it lands. A worker whose beat stays `busy`
  /// past a threshold is *stuck* (wedged kernel, injected stall) --
  /// stuck_workers() is how the scheduler's bounded waits name the
  /// culprit instead of hanging with it.
  struct WorkerBeat {
    bool busy = false;
    std::chrono::steady_clock::time_point since{};
  };

  mutable std::mutex mutex;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  std::vector<std::thread> pool;  ///< guarded by `mutex` (ensure_pool)
  std::vector<WorkerBeat> beats;  ///< one per pool slot (under `mutex`)
  bool stop = false;
  std::deque<QueueEntry> queue;

  // Async session (all under `mutex`).
  std::unordered_map<std::string, CacheEntry> cache;  ///< canonical -> entry
  std::list<const std::string*> lru;  ///< front = most recently used
  std::size_t cache_bytes = 0;
  std::size_t cache_cap_bytes = kDefaultSimCacheCapBytes;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::size_t in_flight = 0;  ///< async contexts not yet completed

  std::unordered_map<std::size_t, std::shared_ptr<JobContext>> tickets;
  std::size_t next_ticket = 0;
  std::size_t reported = 0;  ///< tickets consumed by wait_all

  // Process-isolated tier bookkeeping (all under `mutex`; zero/empty
  // while the fleet runs in-process).
  std::vector<int> child_pids;  ///< live worker pid per slot (0 = none)
  std::uint64_t proc_spawns = 0;
  std::uint64_t proc_crashes = 0;
  std::uint64_t proc_respawns = 0;
  std::uint64_t proc_redispatches = 0;
  std::uint64_t proc_postmortems = 0;  ///< crashed-worker dumps harvested

  /// Drops a job's dedup-cache entry (if present) under `mutex`. Both
  /// failure paths route through here: a failed job must not replay its
  /// failure to re-submissions, and a job whose worker process crashed
  /// mid-slice must not serve its possibly-poisoned partial state to a
  /// later identical candidate -- the re-dispatch and any re-submission
  /// run fresh. Linear scan: crash/failure paths only.
  void purge_entry(const JobContext* ctx) {
    for (auto it = cache.begin(); it != cache.end(); ++it) {
      if (it->second.ctx.get() == ctx) {
        cache_bytes -= it->second.bytes;
        lru.erase(it->second.lru);
        cache.erase(it);
        break;
      }
    }
  }

  /// Evicts completed LRU-tail entries until the cache fits its cap.
  /// In-flight entries are skipped (rotated to the front: they are the
  /// session's most recent work anyway); shared ownership means eviction
  /// only forgets the result for *dedup*, never invalidates tickets.
  void evict_over_cap() {
    if (cache_cap_bytes == 0) return;
    std::size_t scanned = 0;
    const std::size_t max_scan = lru.size();
    while (cache_bytes > cache_cap_bytes && cache.size() > 1 &&
           scanned++ < max_scan) {
      const std::string* key = lru.back();
      const auto it = cache.find(*key);
      ELRR_ASSERT(it != cache.end(), "LRU entry missing from cache map");
      if (!it->second.ctx->done()) {
        lru.splice(lru.begin(), lru, std::prev(lru.end()));
        it->second.lru = lru.begin();
        continue;
      }
      cache_bytes -= it->second.bytes;
      lru.pop_back();
      cache.erase(it);
      ++cache_evictions;
    }
  }
};

}  // namespace fleet_detail

using fleet_detail::FleetCore;
using fleet_detail::JobContext;
using fleet_detail::QueueEntry;

std::size_t resolve_worker_count(std::size_t requested, std::size_t hardware,
                                 std::size_t work_items) {
  // hardware_concurrency() is allowed to report 0 ("unknown"); never
  // under-spawn below one worker, never over-spawn past the queue.
  std::size_t workers = requested != 0 ? requested : hardware;
  if (workers == 0) workers = 1;
  return std::min(workers, std::max<std::size_t>(work_items, 1));
}

std::string canonical_rrg_key(const Rrg& rrg) {
  using bytes::append_value;
  std::string key;
  key.reserve(rrg.num_nodes() * 12 + rrg.num_edges() * 24 + 64);
  append_value(key, static_cast<std::uint64_t>(rrg.num_nodes()));
  append_value(key, static_cast<std::uint64_t>(rrg.num_edges()));
  for (NodeId n = 0; n < rrg.num_nodes(); ++n) {
    append_value(key, static_cast<std::uint8_t>(rrg.kind(n)));
    const Telescopic& t = rrg.telescopic(n);
    append_value(key, static_cast<std::uint8_t>(t.enabled()));
    if (t.enabled()) {
      append_value(key, t.fast_prob);
      append_value(key, static_cast<std::int32_t>(t.slow_extra));
    }
  }
  const Digraph& g = rrg.graph();
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    append_value(key, static_cast<std::uint32_t>(g.src(e)));
    append_value(key, static_cast<std::uint32_t>(g.dst(e)));
    append_value(key, static_cast<std::int32_t>(rrg.tokens(e)));
    append_value(key, static_cast<std::int32_t>(rrg.buffers(e)));
    append_value(key, rrg.gamma(e));
  }
  return key;
}

SimFleet::SimFleet(std::size_t threads, bool dedup,
                   std::size_t cache_cap_bytes)
    : threads_(threads),
      // The proc tier is an environment selection, not an API one: every
      // fleet in the process (flow engines, the scheduler's shared
      // fleet, one-shot simulate_throughput fleets) honors it uniformly,
      // which is what makes ELRR_PROC_WORKERS=N a whole-batch crash
      // domain decision. Validated strictly like every ELRR_* knob.
      proc_workers_(static_cast<std::size_t>(
          env::u64("ELRR_PROC_WORKERS", 0, 0, 256))),
      dedup_(dedup),
      core_(std::make_unique<FleetCore>()) {
  core_->cache_cap_bytes = cache_cap_bytes;
}

SimFleet::~SimFleet() {
  {
    const std::lock_guard<std::mutex> lock(core_->mutex);
    core_->stop = true;
    // Pending queue entries are abandoned (their contexts die with the
    // last reference); a slice a worker already claimed finishes first --
    // join below cannot return before the worker's loop exits.
    core_->queue.clear();
  }
  core_->cv_work.notify_all();
  for (std::thread& worker : core_->pool) worker.join();
}

std::size_t SimFleet::pool_size() const {
  const std::lock_guard<std::mutex> lock(core_->mutex);
  return core_->pool.size();
}

std::size_t SimFleet::hardware_concurrency_cached() {
  static const std::size_t hardware = std::thread::hardware_concurrency();
  return hardware;
}

std::size_t SimFleet::submit(const Rrg& rrg, const SimOptions& options) {
  ELRR_REQUIRE(options.measure_cycles > 0, "measure_cycles must be positive");
  ELRR_REQUIRE(options.runs > 0, "need at least one run");
  jobs_.push_back(Job{&rrg, options});
  return jobs_.size() - 1;
}

std::size_t SimFleet::submit(Rrg&& rrg, const SimOptions& options) {
  ELRR_REQUIRE(options.measure_cycles > 0, "measure_cycles must be positive");
  ELRR_REQUIRE(options.runs > 0, "need at least one run");
  sync_owned_.push_back(std::make_unique<Rrg>(std::move(rrg)));
  jobs_.push_back(Job{sync_owned_.back().get(), options});
  return jobs_.size() - 1;
}

void SimFleet::ensure_pool(std::size_t workers) {
  const std::lock_guard<std::mutex> lock(core_->mutex);
  while (core_->pool.size() < workers) {
    const std::size_t slot = core_->pool.size();
    core_->beats.emplace_back();
    core_->child_pids.push_back(0);
    if (proc_workers_ > 0) {
      core_->pool.emplace_back([this, slot] { proc_supervisor_main(slot); });
    } else {
      core_->pool.emplace_back([this, slot] { worker_main(slot); });
    }
  }
}

void SimFleet::worker_main(std::size_t slot) {
  FleetCore& core = *core_;
  obs::set_thread_label(
      ("fleet-" + std::to_string(slot)).c_str());
  std::unique_lock<std::mutex> lock(core.mutex);
  for (;;) {
    core.cv_work.wait(lock, [&] { return core.stop || !core.queue.empty(); });
    if (core.stop) return;
    const QueueEntry entry = core.queue.front();
    core.queue.pop_front();
    JobContext& ctx = *entry.ctx;
    // A sibling slice already failed: skip the work, still complete the
    // slice so waiters (which rethrow the failure) unblock.
    const bool skip = ctx.failure != nullptr;
    core.beats[slot] = {true, std::chrono::steady_clock::now()};
    lock.unlock();
    // The claimed entry's shared_ptr keeps the context storage alive
    // through execution, whatever tickets/cache do concurrently.
    std::exception_ptr failure;
    if (!skip) {
      try {
        // `fleet.worker` is the whole-worker fault: unlike `fleet.flat`
        // (contained inside execute_slice by the reference fallback) a
        // throw here fails the slice's job -- the transient the
        // scheduler's retry budget exists for. Its `stall:` mode sleeps
        // with the heartbeat set, which is what stuck_workers() reads.
        failpoint::trip("fleet.worker");
        OBS_SPAN_ID("fleet.slice", entry.first);
        obs::rec::event("slice.dispatch", entry.first, entry.count);
        obs::rec::set_inflight("slice", entry.first);
        fleet_detail::execute_slice(ctx, entry.first, entry.count);
      } catch (...) {
        failure = std::current_exception();
      }
      obs::rec::clear_inflight();
    }
    lock.lock();
    core.beats[slot].busy = false;
    if (failure && !ctx.failure) ctx.failure = failure;
    if (ctx.failure) {
      // Purge a failed job from the dedup cache: existing tickets still
      // rethrow the failure, but a *re-submission* of the same candidate
      // must run fresh -- that is what makes a transient fault (injected
      // or real) recoverable by the scheduler's retry, instead of the
      // cache replaying the failure forever.
      core.purge_entry(&ctx);
    }
    if (--ctx.remaining == 0) {
      if (ctx.release_on_done) {
        ctx.release_execution_state();
        ELRR_ASSERT(core.in_flight > 0, "in_flight underflow");
        --core.in_flight;
      }
      core.cv_done.notify_all();
    }
  }
}

void SimFleet::proc_supervisor_main(std::size_t slot) {
  FleetCore& core = *core_;
  // One worker process per supervisor slot, spawned lazily at the first
  // slice and respawned (bounded, with backoff) after a crash. The
  // supervisor thread carries the heartbeat: its beat stays `busy` while
  // the slice is at the child, so stuck_workers() -- and through it the
  // scheduler's stall reporting -- sees a wedged worker process exactly
  // like a wedged in-process worker. Everything else (queue, dedup,
  // completion, failure propagation) is worker_main's, which is what
  // keeps the run-order merge -- and with it every theta -- bit-identical
  // across tiers, worker counts, and mid-batch crashes.
  std::unique_ptr<proc::WorkerProcess> child;
  int spawn_generation = 0;
  obs::set_thread_label(
      ("fleet-proc-" + std::to_string(slot)).c_str());
  std::unique_lock<std::mutex> lock(core.mutex);
  for (;;) {
    core.cv_work.wait(lock, [&] { return core.stop || !core.queue.empty(); });
    if (core.stop) break;
    const QueueEntry entry = core.queue.front();
    core.queue.pop_front();
    JobContext& ctx = *entry.ctx;
    const bool skip = ctx.failure != nullptr;
    core.beats[slot] = {true, std::chrono::steady_clock::now()};
    lock.unlock();
    std::exception_ptr failure;
    if (!skip) {
      try {
        // Same whole-worker fault site as the in-process pool, tripped
        // in the supervisor: chaos schedules targeting `fleet.worker`
        // exercise both tiers with one spec. (`proc.worker` is the
        // *child-side* site -- a real process death, not a throw.)
        failpoint::trip("fleet.worker");
        OBS_SPAN_ID("fleet.proc_slice", entry.first);
        obs::rec::event("slice.dispatch", entry.first, entry.count);
        obs::rec::set_inflight("slice", entry.first);
        proc_run_slice(slot, entry, &child, &spawn_generation);
      } catch (...) {
        failure = std::current_exception();
      }
      obs::rec::clear_inflight();
    }
    lock.lock();
    core.beats[slot].busy = false;
    if (failure && !ctx.failure) ctx.failure = failure;
    if (ctx.failure) core.purge_entry(&ctx);
    if (--ctx.remaining == 0) {
      if (ctx.release_on_done) {
        ctx.release_execution_state();
        ELRR_ASSERT(core.in_flight > 0, "in_flight underflow");
        --core.in_flight;
      }
      core.cv_done.notify_all();
    }
  }
  core.child_pids[slot] = 0;
  lock.unlock();
  // Shutdown: the worker process dies with its handle (EOF, then
  // SIGKILL + reap for a wedged one).
  child.reset();
}

namespace {

/// Folds a crashed worker's postmortem -- if the child's flight
/// recorder managed to publish one; SIGKILL leaves none -- into the
/// death reason, so the path and the last-events excerpt ride every
/// surface the crash already reaches: the supervisor's stderr line,
/// the exhaustion TransientError, and through it the batch JSONL.
std::string harvested_death(FleetCore& core, int dead_pid,
                            std::string death) {
  const std::optional<obs::rec::Harvest> pm = obs::rec::harvest(dead_pid);
  if (!pm.has_value()) return death;
  {
    const std::lock_guard<std::mutex> lock(core.mutex);
    ++core.proc_postmortems;
  }
  death += "; postmortem: " + pm->path;
  if (!pm->excerpt.empty()) death += " [" + pm->excerpt + "]";
  return death;
}

}  // namespace

void SimFleet::proc_run_slice(std::size_t slot, const QueueEntry& entry,
                              std::unique_ptr<proc::WorkerProcess>* child,
                              int* spawn_generation) {
  FleetCore& core = *core_;
  JobContext& ctx = *entry.ctx;
  // Serialize the candidate once per job; all its slices (and any
  // re-dispatch) share the text. %.17g round-trips every double, so the
  // worker rebuilds the exact candidate.
  std::call_once(ctx.rrg_text_once,
                 [&ctx] { ctx.rrg_text = io::write_rrg(*ctx.rrg); });
  const std::string request =
      proc::encode_request(ctx.rrg_text, ctx.options, entry.first, entry.count);

  // The respawn budget is per *slice dispatch*, not per worker lifetime:
  // a long batch may absorb many isolated crashes, but one slice that
  // kills three fresh workers in a row is systematic and must surface.
  constexpr int kMaxAttempts = 3;
  std::string last_death = "worker never started";
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    if (attempt > 0) {
      // Bounded backoff before re-touching the process table: a
      // crash-looping worker must not busy-spin fork().
      std::this_thread::sleep_for(
          std::chrono::milliseconds(10 << (attempt - 1)));
    }
    if (*child != nullptr && !(*child)->alive()) {
      // Death noticed between slices (an external SIGKILL while the
      // worker sat idle) is still a crash of this tier; the slice at
      // hand simply becomes the first one of the replacement.
      const int dead_pid = (*child)->pid();
      last_death = harvested_death(core, dead_pid, (*child)->death_reason());
      child->reset();
      obs::rec::event("worker.crash", static_cast<std::uint64_t>(dead_pid),
                      entry.first);
      const std::lock_guard<std::mutex> lock(core.mutex);
      ++core.proc_crashes;
      core.child_pids[slot] = 0;
      core.purge_entry(&ctx);
    }
    if (*child == nullptr) {
      try {
        failpoint::trip("proc.spawn");
        proc::SpawnConfig config = proc::SpawnConfig::from_env(slot);
        config.generation = *spawn_generation + 1;
        *child = std::make_unique<proc::WorkerProcess>(config);
      } catch (const std::exception& e) {
        last_death = elrr::detail::concat("spawn failed: ", e.what());
        child->reset();
        continue;  // a failed spawn burns one attempt of the budget
      }
      ++(*spawn_generation);
      obs::rec::event(*spawn_generation > 1 ? "worker.respawn"
                                            : "worker.spawn",
                      slot, static_cast<std::uint64_t>((*child)->pid()));
      const std::lock_guard<std::mutex> lock(core.mutex);
      ++core.proc_spawns;
      if (*spawn_generation > 1) ++core.proc_respawns;
      core.child_pids[slot] = (*child)->pid();
    }
    const std::optional<proc::SliceOutcome> outcome =
        (*child)->run_slice(request);
    if (outcome.has_value()) {
      if (!outcome->error.empty()) {
        // Structured worker-side failure: the process is healthy and the
        // error deterministic (a re-dispatch would just repeat it), so
        // it propagates like the in-process path's exception would --
        // permanent, job-level.
        throw InternalError(
            elrr::detail::concat("proc worker: ", outcome->error));
      }
      ELRR_ASSERT(outcome->thetas.size() == entry.count,
                  "proc worker returned ", outcome->thetas.size(),
                  " thetas for a ", entry.count, "-run slice");
      std::copy(outcome->thetas.begin(), outcome->thetas.end(),
                ctx.per_run.begin() + entry.first);
      ctx.degraded_slices.fetch_add(outcome->degraded_slices,
                                    std::memory_order_relaxed);
      if (obs::armed() && !outcome->spans.empty()) {
        // Re-anchor worker-clock spans onto the supervisor timeline:
        // the offset is the non-negative transfer delay between the
        // worker stamping its clock at encode time and us recording
        // here, so worker spans land strictly inside this dispatch's
        // fleet.proc_slice span (obs/trace.hpp clock contract).
        const std::int64_t offset =
            obs::now_ns_if_armed() - outcome->clock_ns;
        for (const proc::WorkerSpan& span : outcome->spans) {
          obs::record_foreign_span(span.name.c_str(), span.start_ns + offset,
                                   span.end_ns + offset, outcome->worker_pid,
                                   1);
        }
      }
      if (attempt > 0) {
        const std::lock_guard<std::mutex> lock(core.mutex);
        ++core.proc_redispatches;
      }
      return;
    }
    // Crash: the round-trip tore (child death, SIGKILL, torn frame,
    // garbage bytes). Post-mortem, purge the job's dedup entry -- the
    // re-dispatched slice and any identical re-submission must run
    // against fresh state, never a possibly-poisoned partial result --
    // then respawn and re-dispatch this same slice. Its per_run slots
    // are untouched by the dead attempt (results only land with a whole
    // valid response frame), so the merge stays bit-identical.
    const int dead_pid = (*child)->pid();
    last_death = harvested_death(core, dead_pid, (*child)->death_reason());
    child->reset();
    obs::rec::event("worker.crash", static_cast<std::uint64_t>(dead_pid),
                    entry.first);
    obs::rec::event("slice.redispatch", entry.first,
                    static_cast<std::uint64_t>(attempt + 1));
    {
      const std::lock_guard<std::mutex> lock(core.mutex);
      ++core.proc_crashes;
      core.child_pids[slot] = 0;
      core.purge_entry(&ctx);
    }
    std::fprintf(stderr,
                 "elrr fleet: worker process (slot %zu) died mid-slice "
                 "(%s); re-dispatching runs [%u, %u)\n",
                 slot, last_death.c_str(), entry.first,
                 entry.first + entry.count);
  }
  throw TransientError(elrr::detail::concat(
      "worker process crashed ", kMaxAttempts, " times on runs [",
      entry.first, ", ", entry.first + entry.count,
      ") of a fleet job (last: ", last_death, ")"));
}

std::vector<SimReport> SimFleet::drain() {
  if (jobs_.empty()) return {};
  // The queue empties no matter how this drain ends (success, a job
  // exception on either the inline or the pooled path, a context-build
  // throw): a failed drain never leaks its jobs into the next one. The
  // owned candidates of this drain die with it too (after execution).
  const std::vector<Job> jobs = std::move(jobs_);
  jobs_.clear();
  struct OwnedGuard {
    std::vector<std::unique_ptr<Rrg>>* owned;
    ~OwnedGuard() { owned->clear(); }
  } owned_guard{&sync_owned_};

  // Deduplicate: jobs whose canonical (rrg content, options) key matches
  // an earlier submission share that submission's context -- one
  // simulation, results fanned out below. Precompute every unique job's
  // kernel, tables and slice partition. The lane cap is per job:
  // options.max_batch == 0 means the driver default, anything else
  // clamps (1 = solo stepping); reference-path jobs go run by run (the
  // reference kernel has no batched stepper).
  std::vector<std::size_t> group(jobs.size());
  std::vector<std::shared_ptr<JobContext>> contexts;
  {
    std::unordered_map<std::string, std::size_t> seen;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (dedup_) {
        const std::string key =
            fleet_detail::canonical_key(*jobs[j].rrg, jobs[j].options);
        const auto [it, inserted] = seen.emplace(key, contexts.size());
        group[j] = it->second;
        if (!inserted) continue;
      } else {
        group[j] = contexts.size();
      }
      contexts.push_back(std::make_shared<JobContext>());
      JobContext& ctx = *contexts.back();
      ctx.rrg = jobs[j].rrg;
      ctx.options = jobs[j].options;
    }
  }
  last_unique_ = contexts.size();

  std::vector<QueueEntry> entries;
  for (const std::shared_ptr<JobContext>& ctx : contexts) {
    std::vector<QueueEntry> slices;
    fleet_detail::build_context(*ctx, &slices, ctx,
                                /*build_kernels=*/proc_workers_ == 0);
    ctx->remaining = slices.size();
    entries.insert(entries.end(), slices.begin(), slices.end());
  }

  // An explicit thread request never consults hardware_concurrency():
  // the queried value is irrelevant then, and the call is not free on
  // every drain of a hot flow loop. In proc mode the pool width is the
  // supervisor count (ELRR_PROC_WORKERS), still capped by the queue.
  const std::size_t hardware =
      threads_ == 0 && proc_workers_ == 0 ? hardware_concurrency_cached() : 0;
  const std::size_t workers =
      proc_workers_ > 0
          ? resolve_worker_count(proc_workers_, 0, entries.size())
          : resolve_worker_count(threads_, hardware, entries.size());
  last_workers_ = workers;
  if (workers <= 1 && proc_workers_ == 0) {
    for (const QueueEntry& entry : entries) {
      OBS_SPAN_ID("fleet.slice", entry.first);
      obs::rec::event("slice.dispatch", entry.first, entry.count);
      obs::rec::set_inflight("slice", entry.first);
      fleet_detail::execute_slice(*entry.ctx, entry.first, entry.count);
      obs::rec::clear_inflight();
    }
  } else {
    ensure_pool(workers);
    {
      std::unique_lock<std::mutex> lock(core_->mutex);
      for (const QueueEntry& entry : entries) {
        core_->queue.push_back(entry);
      }
      core_->cv_work.notify_all();
      core_->cv_done.wait(lock, [&] {
        for (const std::shared_ptr<JobContext>& ctx : contexts) {
          if (!ctx->done()) return false;
        }
        return true;
      });
    }
    // Rethrow the first failure in context (submission) order --
    // deterministic regardless of which worker hit it first.
    for (const std::shared_ptr<JobContext>& ctx : contexts) {
      if (ctx->failure) std::rethrow_exception(ctx->failure);
    }
  }

  // Merge in run order, job by job (each through its unique context):
  // neither the queue interleaving, the pool size nor dedup can reach
  // this reduction.
  std::vector<SimReport> reports;
  reports.reserve(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    reports.push_back(fleet_detail::report_for(*contexts[group[j]]));
  }
  return reports;
}

SimTicket SimFleet::submit_async(const Rrg& rrg, const SimOptions& options) {
  return enqueue_async(&rrg, options, nullptr);
}

SimTicket SimFleet::submit_async(Rrg&& rrg, const SimOptions& options) {
  auto owned = std::make_unique<Rrg>(std::move(rrg));
  const Rrg* ptr = owned.get();
  return enqueue_async(ptr, options, std::move(owned));
}

SimTicket SimFleet::enqueue_async(const Rrg* rrg, const SimOptions& options,
                                  std::unique_ptr<Rrg> owned) {
  ELRR_REQUIRE(options.measure_cycles > 0, "measure_cycles must be positive");
  ELRR_REQUIRE(options.runs > 0, "need at least one run");
  FleetCore& core = *core_;

  // The key is computed outside the lock (pure function of the inputs);
  // the lookup-or-reserve below is one critical section, so exactly one
  // of any number of concurrent identical submissions builds the job and
  // the rest alias it -- even while it is still building.
  std::string key;
  if (dedup_) key = fleet_detail::canonical_key(*rrg, options);

  auto fresh = std::make_shared<JobContext>();
  const std::string* reserved_key = nullptr;
  {
    const std::lock_guard<std::mutex> lock(core.mutex);
    if (dedup_) {
      const auto it = core.cache.find(key);
      if (it != core.cache.end()) {
        // Session cache hit: an identical candidate was already
        // submitted (possibly by another client, possibly still
        // building) -- the new ticket simply aliases its context.
        core.lru.splice(core.lru.begin(), core.lru, it->second.lru);
        it->second.lru = core.lru.begin();
        ++core.cache_hits;
        obs::count("fleet.dedup_hit");
        const SimTicket ticket{core.next_ticket++, /*fresh=*/false};
        core.tickets.emplace(ticket.id, it->second.ctx);
        return ticket;
      }
    }
    fresh->remaining = JobContext::kBuilding;
    fresh->release_on_done = true;
    ++core.cache_misses;
    ++core.in_flight;
    if (dedup_) {
      const auto [it, inserted] =
          core.cache.emplace(std::move(key), FleetCore::CacheEntry{});
      ELRR_ASSERT(inserted, "dedup key raced past the reservation");
      core.lru.push_front(&it->first);
      it->second = FleetCore::CacheEntry{fresh, core.lru.begin(), 0};
      reserved_key = &it->first;
    }
  }

  // Build kernels/tables/slices outside the lock -- concurrent clients
  // keep submitting meanwhile. Aliasing tickets simply wait: `remaining`
  // stays at the kBuilding sentinel until the slices are queued.
  fresh->rrg = rrg;
  fresh->options = options;
  fresh->owned_rrg = std::move(owned);
  std::vector<QueueEntry> slices;
  std::size_t backlog = 0;
  SimTicket ticket;
  try {
    fleet_detail::build_context(*fresh, &slices, fresh,
                                /*build_kernels=*/proc_workers_ == 0);
  } catch (...) {
    // The reservation must not wedge aliases or leak: fail the context
    // (aliased tickets rethrow on wait), drop it from the cache, and
    // rethrow to the submitting caller like the eager validation would.
    const std::lock_guard<std::mutex> lock(core.mutex);
    fresh->failure = std::current_exception();
    fresh->remaining = 0;
    ELRR_ASSERT(core.in_flight > 0, "in_flight underflow");
    --core.in_flight;
    if (reserved_key != nullptr) {
      const auto it = core.cache.find(*reserved_key);
      if (it != core.cache.end()) {
        core.lru.erase(it->second.lru);
        core.cache.erase(it);
      }
    }
    core.cv_done.notify_all();
    throw;
  }
  {
    const std::lock_guard<std::mutex> lock(core.mutex);
    fresh->remaining = slices.size();
    for (QueueEntry& slice : slices) core.queue.push_back(std::move(slice));
    backlog = core.queue.size();
    ticket = SimTicket{core.next_ticket++, /*fresh=*/true};
    core.tickets.emplace(ticket.id, fresh);
    if (reserved_key != nullptr) {
      const auto it = core.cache.find(*reserved_key);
      ELRR_ASSERT(it != core.cache.end(), "reserved cache entry vanished");
      it->second.bytes = fleet_detail::entry_bytes(*reserved_key, *fresh);
      core.cache_bytes += it->second.bytes;
      core.evict_over_cap();
    }
  }
  // Async work always runs on the pool (that is the point: the caller's
  // thread keeps optimizing); grow it to cover the queued backlog up to
  // the configured width. 0 = hardware concurrency, queried once. In
  // proc mode the pool is the supervisor set, one worker process each.
  ensure_pool(
      proc_workers_ > 0
          ? resolve_worker_count(proc_workers_, 0, backlog)
          : resolve_worker_count(
                threads_, threads_ == 0 ? hardware_concurrency_cached() : 0,
                backlog));
  core.cv_work.notify_all();
  return ticket;
}

bool SimFleet::poll(SimTicket ticket) const {
  FleetCore& core = *core_;
  const std::lock_guard<std::mutex> lock(core.mutex);
  ELRR_REQUIRE(ticket.valid(), "invalid simulation ticket");
  const auto it = core.tickets.find(ticket.id);
  ELRR_REQUIRE(it != core.tickets.end(),
               "unknown or released simulation ticket ", ticket.id);
  return it->second->done();
}

SimReport SimFleet::wait(SimTicket ticket) {
  FleetCore& core = *core_;
  std::unique_lock<std::mutex> lock(core.mutex);
  ELRR_REQUIRE(ticket.valid(), "invalid simulation ticket");
  const auto it = core.tickets.find(ticket.id);
  ELRR_REQUIRE(it != core.tickets.end(),
               "unknown or released simulation ticket ", ticket.id);
  // Hold our own reference across the wait: a concurrent release() of
  // this ticket id must not free the context out from under us.
  const std::shared_ptr<JobContext> ctx = it->second;
  core.cv_done.wait(lock, [&] { return ctx->done(); });
  if (ctx->failure) std::rethrow_exception(ctx->failure);
  return fleet_detail::report_for(*ctx);
}

std::optional<SimReport> SimFleet::wait_for(SimTicket ticket,
                                            double seconds) {
  FleetCore& core = *core_;
  std::unique_lock<std::mutex> lock(core.mutex);
  ELRR_REQUIRE(ticket.valid(), "invalid simulation ticket");
  const auto it = core.tickets.find(ticket.id);
  ELRR_REQUIRE(it != core.tickets.end(),
               "unknown or released simulation ticket ", ticket.id);
  const std::shared_ptr<JobContext> ctx = it->second;
  const auto budget = std::chrono::duration<double>(std::max(seconds, 0.0));
  if (!core.cv_done.wait_for(lock, budget, [&] { return ctx->done(); })) {
    return std::nullopt;
  }
  if (ctx->failure) std::rethrow_exception(ctx->failure);
  return fleet_detail::report_for(*ctx);
}

std::size_t SimFleet::stuck_workers(double threshold_s) const {
  FleetCore& core = *core_;
  const auto now = std::chrono::steady_clock::now();
  const std::lock_guard<std::mutex> lock(core.mutex);
  std::size_t stuck = 0;
  for (const FleetCore::WorkerBeat& beat : core.beats) {
    if (!beat.busy) continue;
    const double busy_s =
        std::chrono::duration<double>(now - beat.since).count();
    if (busy_s > threshold_s) ++stuck;
  }
  return stuck;
}

void SimFleet::release(SimTicket ticket) {
  if (!ticket.valid()) return;
  FleetCore& core = *core_;
  const std::lock_guard<std::mutex> lock(core.mutex);
  core.tickets.erase(ticket.id);
}

std::vector<SimReport> SimFleet::wait_all() {
  FleetCore& core = *core_;
  std::unique_lock<std::mutex> lock(core.mutex);
  core.cv_done.wait(lock, [&] { return core.in_flight == 0; });
  // The wave is consumed whether it succeeded or not: a failed ticket
  // rethrows (first in ticket order, deterministically) but never wedges
  // later wait_all() calls -- `reported` advances past the wave first,
  // and individual results stay retrievable through wait(ticket).
  // Released tickets are skipped.
  std::vector<SimReport> reports;
  std::exception_ptr failure;
  for (std::size_t t = core.reported; t < core.next_ticket; ++t) {
    const auto it = core.tickets.find(t);
    if (it == core.tickets.end()) continue;  // released
    const JobContext& ctx = *it->second;
    if (ctx.failure) {
      if (!failure) failure = ctx.failure;
      continue;
    }
    reports.push_back(fleet_detail::report_for(ctx));
  }
  core.reported = core.next_ticket;
  if (failure) std::rethrow_exception(failure);
  return reports;
}

std::size_t SimFleet::async_pending() const {
  FleetCore& core = *core_;
  const std::lock_guard<std::mutex> lock(core.mutex);
  return core.in_flight;
}

std::size_t SimFleet::async_cache_size() const {
  FleetCore& core = *core_;
  const std::lock_guard<std::mutex> lock(core.mutex);
  // A dedup-off session has no cache; its unique-simulation count is the
  // historical reading of this accessor, so keep reporting it.
  return dedup_ ? core.cache.size()
                : static_cast<std::size_t>(core.cache_misses);
}

SimCacheStats SimFleet::cache_stats() const {
  FleetCore& core = *core_;
  const std::lock_guard<std::mutex> lock(core.mutex);
  SimCacheStats stats;
  stats.entries = core.cache.size();
  stats.bytes = core.cache_bytes;
  stats.capacity_bytes = core.cache_cap_bytes;
  stats.hits = core.cache_hits;
  stats.misses = core.cache_misses;
  stats.evictions = core.cache_evictions;
  return stats;
}

ProcFleetStats SimFleet::proc_stats() const {
  FleetCore& core = *core_;
  const std::lock_guard<std::mutex> lock(core.mutex);
  ProcFleetStats stats;
  stats.spawns = core.proc_spawns;
  stats.crashes = core.proc_crashes;
  stats.respawns = core.proc_respawns;
  stats.redispatches = core.proc_redispatches;
  stats.postmortems = core.proc_postmortems;
  return stats;
}

std::size_t SimFleet::busy_workers() const {
  FleetCore& core = *core_;
  const std::lock_guard<std::mutex> lock(core.mutex);
  std::size_t busy = 0;
  for (const FleetCore::WorkerBeat& beat : core.beats) {
    if (beat.busy) ++busy;
  }
  return busy;
}

std::vector<int> SimFleet::proc_worker_pids() const {
  FleetCore& core = *core_;
  const std::lock_guard<std::mutex> lock(core.mutex);
  std::vector<int> pids;
  for (const int pid : core.child_pids) {
    if (pid != 0) pids.push_back(pid);
  }
  return pids;
}

SliceRunner::SliceRunner(Rrg rrg, const SimOptions& options) {
  ELRR_REQUIRE(options.measure_cycles > 0, "measure_cycles must be positive");
  ELRR_REQUIRE(options.runs > 0, "need at least one run");
  ctx_ = std::make_shared<JobContext>();
  ctx_->owned_rrg = std::make_unique<Rrg>(std::move(rrg));
  ctx_->rrg = ctx_->owned_rrg.get();
  ctx_->options = options;
  // Full build (kernels included): the runner *is* the execution state
  // the supervisor skipped. The slice partition computed here is
  // discarded -- the supervisor's partition arrives slice by slice over
  // the pipe -- but path classification and lane_cap must match it, and
  // they do because both sides run the identical build_context.
  std::vector<QueueEntry> slices;
  fleet_detail::build_context(*ctx_, &slices, ctx_);
}

SliceRunner::~SliceRunner() = default;

SliceRun SliceRunner::run(std::uint32_t first, std::uint32_t count) {
  ELRR_REQUIRE(count > 0, "empty slice");
  ELRR_REQUIRE(first <= ctx_->options.runs &&
                   count <= ctx_->options.runs - first,
               "slice [", first, ", ", first + count, ") exceeds ",
               ctx_->options.runs, " runs");
  const std::uint32_t degraded_before =
      ctx_->degraded_slices.load(std::memory_order_relaxed);
  fleet_detail::execute_slice(*ctx_, first, count);
  SliceRun result;
  result.thetas.assign(ctx_->per_run.begin() + first,
                       ctx_->per_run.begin() + first + count);
  result.path = ctx_->path;
  result.fallback = ctx_->fallback;
  result.degraded_slices =
      ctx_->degraded_slices.load(std::memory_order_relaxed) - degraded_before;
  return result;
}

}  // namespace elrr::sim
