#include "sim/fleet.hpp"

#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/choosers.hpp"
#include "sim/flat_kernel.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace elrr::sim {

namespace fleet_detail {

/// Default step_batch lane pack (SSE-width int32 vectors) and the widest
/// one the driver instantiates. Wider packs help hosts with wider SIMD
/// (build with -DELRR_NATIVE=ON) and workloads with many runs per
/// candidate; SimOptions::max_batch picks per job.
inline constexpr std::size_t kDefaultLane = 4;
inline constexpr std::size_t kMaxLane = 16;

/// The slice widths execute_item can step directly (descending). A job's
/// runs are packed greedily: the widest allowed width first, remainders
/// through the narrower ones, so any (runs, lane_cap) pair partitions
/// into supported widths. The partition is fixed up front per job --
/// independent of worker scheduling -- and lane packing never changes
/// results (every run draws from run-private streams).
inline constexpr std::size_t kLaneWidths[] = {16, 8, 4, 3, 2, 1};

std::size_t next_slice_width(std::size_t lane_cap, std::size_t remaining) {
  for (const std::size_t w : kLaneWidths) {
    if (w <= lane_cap && w <= remaining) return w;
  }
  return 1;
}

/// Independent per-node streams, derived exactly like the reference
/// driver always has: one master stream split once per node, so adding a
/// node does not perturb the others' select sequences.
std::vector<Rng> node_streams(std::uint64_t seed, std::size_t num_nodes) {
  Rng master(seed);
  std::vector<Rng> streams;
  streams.reserve(num_nodes);
  for (std::size_t n = 0; n < num_nodes; ++n) streams.push_back(master.split());
  return streams;
}

/// One full replication on the flat fast path: templated choosers, no
/// allocation after the stream setup.
double run_flat(const FlatKernel& kernel, const GuardTable& guards,
                const LatencyTable& latencies, std::uint64_t seed,
                const SimOptions& options) {
  const std::size_t num_nodes = kernel.num_nodes();
  std::vector<Rng> streams = node_streams(seed, num_nodes);
  const TableGuardChooser guard{&guards, streams.data()};
  const TableLatencyChooser latency{&latencies, streams.data()};

  FlatState state = kernel.initial_state();
  for (std::size_t t = 0; t < options.warmup_cycles; ++t) {
    kernel.step(state, guard, latency);
  }
  std::uint64_t firings = 0;
  for (std::size_t t = 0; t < options.measure_cycles; ++t) {
    firings += kernel.step(state, guard, latency);
  }
  return static_cast<double>(firings) /
         (static_cast<double>(options.measure_cycles) *
          static_cast<double>(num_nodes));
}

/// K replications interleaved through one FlatKernel pass. Each run
/// draws from the same streams the solo path would (RunStreams derives
/// them master-per-run, node-major), so per-run theta is bit-identical
/// to run_flat for every lane width -- telescopic graphs included (the
/// batched stepper carries per-lane busy countdowns, and each lane's
/// latency draws come from its own run-private streams).
template <std::size_t K>
void run_flat_batch(const FlatKernel& kernel, const GuardTable& guards,
                    const LatencyTable& latencies, std::uint64_t sim_seed,
                    std::size_t first_run, const SimOptions& options,
                    double* thetas) {
  const std::size_t num_nodes = kernel.num_nodes();
  std::uint64_t seeds[K];
  for (std::size_t r = 0; r < K; ++r) {
    seeds[r] = run_seed(sim_seed, first_run + r);
  }
  RunStreams streams(seeds, K, num_nodes);
  const BatchTableGuardChooser guard{&guards, streams.data(), K};
  const BatchTableLatencyChooser latency{&latencies, streams.data(), K};

  FlatBatchState state = kernel.initial_batch_state(K);
  std::uint64_t totals[K] = {};
  for (std::size_t t = 0; t < options.warmup_cycles; ++t) {
    kernel.step_batch<K>(state, guard, totals, latency);
  }
  std::fill(totals, totals + K, 0);  // discard the transient
  for (std::size_t t = 0; t < options.measure_cycles; ++t) {
    kernel.step_batch<K>(state, guard, totals, latency);
  }
  for (std::size_t r = 0; r < K; ++r) {
    thetas[r] = static_cast<double>(totals[r]) /
                (static_cast<double>(options.measure_cycles) *
                 static_cast<double>(num_nodes));
  }
}

/// One replication on the reference kernel (fallback for RRGs the flat
/// layout cannot represent, and the anchor of the differential tests).
/// Draws the same per-node streams through the same table arithmetic, so
/// theta is bit-identical to run_flat.
double run_reference(const Kernel& kernel, const GuardTable& guards,
                     const LatencyTable& latencies, std::uint64_t seed,
                     const SimOptions& options) {
  const std::size_t num_nodes = kernel.rrg().num_nodes();
  std::vector<Rng> streams = node_streams(seed, num_nodes);
  const Kernel::GuardChooser guard = [&](NodeId n) {
    return guards.sample(n, streams[n]);
  };
  const Kernel::LatencyChooser latency = [&](NodeId n) {
    return latencies.sample(n, streams[n]);
  };

  SyncState state = kernel.initial_state();
  for (std::size_t t = 0; t < options.warmup_cycles; ++t) {
    kernel.step(state, guard, latency);
  }
  std::uint64_t firings = 0;
  for (std::size_t t = 0; t < options.measure_cycles; ++t) {
    firings += kernel.step(state, guard, latency);
  }
  return static_cast<double>(firings) /
         (static_cast<double>(options.measure_cycles) *
          static_cast<double>(num_nodes));
}

/// Everything one unique job needs at execution time. Kernels and tables
/// are built once per unique job and shared read-only by all workers;
/// per-run theta slots are written by exactly one work item each
/// (disjoint ranges), so workers never contend.
struct JobContext {
  const Rrg* rrg = nullptr;
  SimOptions options;
  SimPath path = SimPath::kFlat;
  FlatCap fallback = FlatCap::kNone;
  std::size_t lane_cap = 1;  ///< batch width cap this job's slices use
  std::unique_ptr<FlatKernel> flat_kernel;
  std::unique_ptr<Kernel> ref_kernel;
  std::unique_ptr<GuardTable> guards;
  std::unique_ptr<LatencyTable> latencies;
  std::vector<double> per_run;  ///< run-indexed theta slots
};

/// One queue entry: a contiguous slice of one unique job's runs, at most
/// lane_cap wide. Slices are fixed up front (greedy width partition per
/// job), so the partition -- and with it every run's lane assignment --
/// is independent of worker scheduling.
struct WorkItem {
  std::uint32_t job = 0;  ///< index into the unique-job context array
  std::uint32_t first = 0;
  std::uint32_t count = 0;
};

void execute_item(JobContext& ctx, const WorkItem& item) {
  double* const thetas = ctx.per_run.data() + item.first;
  if (ctx.path != SimPath::kFlat) {
    for (std::uint32_t r = 0; r < item.count; ++r) {
      thetas[r] = run_reference(*ctx.ref_kernel, *ctx.guards, *ctx.latencies,
                                run_seed(ctx.options.seed, item.first + r),
                                ctx.options);
    }
    return;
  }
  switch (item.count) {
    case 1:
      thetas[0] = run_flat(*ctx.flat_kernel, *ctx.guards, *ctx.latencies,
                           run_seed(ctx.options.seed, item.first),
                           ctx.options);
      break;
    case 2:
      run_flat_batch<2>(*ctx.flat_kernel, *ctx.guards, *ctx.latencies,
                        ctx.options.seed, item.first, ctx.options, thetas);
      break;
    case 3:
      run_flat_batch<3>(*ctx.flat_kernel, *ctx.guards, *ctx.latencies,
                        ctx.options.seed, item.first, ctx.options, thetas);
      break;
    case 4:
      run_flat_batch<4>(*ctx.flat_kernel, *ctx.guards, *ctx.latencies,
                        ctx.options.seed, item.first, ctx.options, thetas);
      break;
    case 8:
      run_flat_batch<8>(*ctx.flat_kernel, *ctx.guards, *ctx.latencies,
                        ctx.options.seed, item.first, ctx.options, thetas);
      break;
    case 16:
      run_flat_batch<16>(*ctx.flat_kernel, *ctx.guards, *ctx.latencies,
                         ctx.options.seed, item.first, ctx.options, thetas);
      break;
    default:
      ELRR_ASSERT(false, "unsupported lane width ", item.count);
  }
}

namespace {

void append_bytes(std::string& key, const void* data, std::size_t size) {
  key.append(static_cast<const char*>(data), size);
}

template <class T>
void append_value(std::string& key, T value) {
  append_bytes(key, &value, sizeof(value));
}

/// Canonical byte key of (RRG content, simulation options): two jobs with
/// equal keys are guaranteed the same per-run thetas by the determinism
/// contract, so the fleet simulates one and fans the scores out. Covers
/// everything the simulation semantics read (structure, tokens, buffers,
/// gammas, kinds, telescopic parameters) plus the options fields that
/// select streams and windows.
std::string canonical_key(const Rrg& rrg, const SimOptions& options) {
  std::string key;
  key.reserve(rrg.num_nodes() * 12 + rrg.num_edges() * 24 + 64);
  append_value(key, static_cast<std::uint64_t>(rrg.num_nodes()));
  append_value(key, static_cast<std::uint64_t>(rrg.num_edges()));
  for (NodeId n = 0; n < rrg.num_nodes(); ++n) {
    append_value(key, static_cast<std::uint8_t>(rrg.kind(n)));
    const Telescopic& t = rrg.telescopic(n);
    append_value(key, static_cast<std::uint8_t>(t.enabled()));
    if (t.enabled()) {
      append_value(key, t.fast_prob);
      append_value(key, static_cast<std::int32_t>(t.slow_extra));
    }
  }
  const Digraph& g = rrg.graph();
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    append_value(key, static_cast<std::uint32_t>(g.src(e)));
    append_value(key, static_cast<std::uint32_t>(g.dst(e)));
    append_value(key, static_cast<std::int32_t>(rrg.tokens(e)));
    append_value(key, static_cast<std::int32_t>(rrg.buffers(e)));
    append_value(key, rrg.gamma(e));
  }
  append_value(key, options.seed);
  append_value(key, static_cast<std::uint64_t>(options.warmup_cycles));
  append_value(key, static_cast<std::uint64_t>(options.measure_cycles));
  append_value(key, static_cast<std::uint64_t>(options.runs));
  append_value(key, static_cast<std::uint8_t>(options.force_reference));
  return key;
}

}  // namespace

}  // namespace fleet_detail

using fleet_detail::JobContext;
using fleet_detail::WorkItem;

std::size_t resolve_worker_count(std::size_t requested, std::size_t hardware,
                                 std::size_t work_items) {
  // hardware_concurrency() is allowed to report 0 ("unknown"); never
  // under-spawn below one worker, never over-spawn past the queue.
  std::size_t workers = requested != 0 ? requested : hardware;
  if (workers == 0) workers = 1;
  return std::min(workers, std::max<std::size_t>(work_items, 1));
}

std::size_t SimFleet::submit(const Rrg& rrg, const SimOptions& options) {
  ELRR_REQUIRE(options.measure_cycles > 0, "measure_cycles must be positive");
  ELRR_REQUIRE(options.runs > 0, "need at least one run");
  jobs_.push_back(Job{&rrg, options});
  return jobs_.size() - 1;
}

SimFleet::~SimFleet() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& worker : pool_) worker.join();
}

void SimFleet::ensure_pool(std::size_t workers) {
  while (pool_.size() < workers) {
    pool_.emplace_back([this] { worker_main(); });
  }
}

void SimFleet::worker_main() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_work_.wait(lock, [&] { return stop_ || epoch_ != seen; });
    if (stop_) return;
    seen = epoch_;
    // Copy the batch descriptor: stragglers must never read the fleet's
    // batch fields after drain() moved on to a later epoch.
    const WorkItem* const items = batch_items_;
    JobContext* const contexts = batch_contexts_;
    const std::size_t total = batch_total_;
    // The epoch guard keeps a worker that finished this batch from
    // claiming against a *later* drain's counters with this batch's
    // stale descriptor.
    while (epoch_ == seen && batch_next_ < total) {
      const std::size_t i = batch_next_++;
      const bool skip = failure_ != nullptr;
      lock.unlock();
      // A claimed item keeps its batch storage alive: drain() cannot
      // return before every claimed item is counted completed.
      if (!skip) {
        try {
          execute_item(contexts[items[i].job], items[i]);
        } catch (...) {
          const std::lock_guard<std::mutex> guard(mutex_);
          if (!failure_) failure_ = std::current_exception();
        }
      }
      lock.lock();
      if (++batch_completed_ == total) cv_done_.notify_all();
    }
  }
}

std::vector<SimReport> SimFleet::drain() {
  if (jobs_.empty()) return {};
  // The queue empties no matter how this drain ends (success, a job
  // exception on either the inline or the pooled path, a context-build
  // throw): a failed drain never leaks its jobs into the next one.
  const std::vector<Job> jobs = std::move(jobs_);
  jobs_.clear();

  // Deduplicate: jobs whose canonical (rrg content, options) key matches
  // an earlier submission share that submission's context -- one
  // simulation, results fanned out below. Precompute every unique job's
  // kernel, tables and slice partition. The lane cap is per job:
  // options.max_batch == 0 means the driver default, anything else
  // clamps (1 = solo stepping); reference-path jobs go run by run (the
  // reference kernel has no batched stepper).
  std::vector<std::size_t> group(jobs.size());
  std::vector<JobContext> contexts;
  contexts.reserve(jobs.size());
  {
    std::unordered_map<std::string, std::size_t> seen;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (dedup_) {
        const std::string key =
            fleet_detail::canonical_key(*jobs[j].rrg, jobs[j].options);
        const auto [it, inserted] = seen.emplace(key, contexts.size());
        group[j] = it->second;
        if (!inserted) continue;
      } else {
        group[j] = contexts.size();
      }
      contexts.emplace_back();
      JobContext& ctx = contexts.back();
      ctx.rrg = jobs[j].rrg;
      ctx.options = jobs[j].options;
    }
  }
  last_unique_ = contexts.size();

  std::vector<WorkItem> items;
  for (std::size_t u = 0; u < contexts.size(); ++u) {
    JobContext& ctx = contexts[u];
    ctx.fallback = ctx.options.force_reference
                       ? FlatCap::kNone
                       : FlatKernel::unsupported_reason(*ctx.rrg);
    if (ctx.options.force_reference) {
      ctx.path = SimPath::kReferenceForced;
    } else if (ctx.fallback != FlatCap::kNone) {
      ctx.path = SimPath::kReference;
    } else {
      ctx.path = SimPath::kFlat;
    }
    if (ctx.path == SimPath::kFlat) {
      ctx.flat_kernel = std::make_unique<FlatKernel>(*ctx.rrg);
      ctx.lane_cap = ctx.options.max_batch == 0
                         ? fleet_detail::kDefaultLane
                         : std::min(ctx.options.max_batch,
                                    fleet_detail::kMaxLane);
    } else {
      ctx.ref_kernel = std::make_unique<Kernel>(*ctx.rrg);
      ctx.lane_cap = 1;
    }
    ctx.guards = std::make_unique<GuardTable>(*ctx.rrg);
    ctx.latencies = std::make_unique<LatencyTable>(*ctx.rrg);
    ctx.per_run.assign(ctx.options.runs, 0.0);
    for (std::size_t first = 0; first < ctx.options.runs;) {
      const std::size_t width = fleet_detail::next_slice_width(
          ctx.lane_cap, ctx.options.runs - first);
      items.push_back(WorkItem{static_cast<std::uint32_t>(u),
                               static_cast<std::uint32_t>(first),
                               static_cast<std::uint32_t>(width)});
      first += width;
    }
  }

  // An explicit thread request never consults hardware_concurrency():
  // the queried value is irrelevant then, and the call is not free on
  // every drain of a hot flow loop.
  const std::size_t hardware =
      threads_ == 0 ? std::thread::hardware_concurrency() : 0;
  const std::size_t workers =
      resolve_worker_count(threads_, hardware, items.size());
  last_workers_ = workers;
  if (workers <= 1) {
    for (const WorkItem& item : items) {
      fleet_detail::execute_item(contexts[item.job], item);
    }
  } else {
    ensure_pool(workers);
    std::unique_lock<std::mutex> lock(mutex_);
    batch_items_ = items.data();
    batch_contexts_ = contexts.data();
    batch_total_ = items.size();
    batch_next_ = 0;
    batch_completed_ = 0;
    failure_ = nullptr;
    ++epoch_;
    cv_work_.notify_all();
    cv_done_.wait(lock, [&] { return batch_completed_ == batch_total_; });
    if (failure_) {
      const std::exception_ptr failure = failure_;
      failure_ = nullptr;
      lock.unlock();
      std::rethrow_exception(failure);
    }
  }

  // Merge in run order, job by job (each through its unique context):
  // neither the queue interleaving, the pool size nor dedup can reach
  // this reduction.
  std::vector<SimReport> reports;
  reports.reserve(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const JobContext& ctx = contexts[group[j]];
    RunningStats across_runs;
    for (const double theta : ctx.per_run) across_runs.add(theta);
    SimReport report;
    report.theta = across_runs.mean();
    report.stderr_theta = across_runs.stderr_mean();
    report.cycles = ctx.options.runs * ctx.options.measure_cycles;
    report.path = ctx.path;
    report.fallback = ctx.fallback;
    reports.push_back(report);
  }
  return reports;
}

}  // namespace elrr::sim
