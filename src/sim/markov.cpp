#include "sim/markov.hpp"

#include <cmath>
#include <unordered_map>
#include <vector>

#include "sim/flat_kernel.hpp"
#include "sim/kernel.hpp"
#include "support/error.hpp"

namespace elrr::sim {

namespace {

struct ByteHash {
  std::size_t operator()(const std::vector<std::uint8_t>& bytes) const {
    std::size_t h = 0xcbf29ce484222325ULL;
    for (std::uint8_t b : bytes) {
      h ^= b;
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};

struct Transition {
  std::uint32_t next;
  double prob;
};

std::vector<std::uint8_t> encode_state(const FlatKernel& kernel,
                                       const FlatState& state) {
  return kernel.encode(state);
}

std::vector<std::uint8_t> encode_state(const Kernel&, const SyncState& state) {
  return state.encode();
}

/// Breadth-first enumeration of the reachable state space + damped power
/// iteration. Templated over the kernel so the fast FlatKernel path (the
/// default) and the reference Kernel fallback (EB chains deeper than the
/// flat bit-ring) share one implementation; the choosers stay flexible
/// lambdas -- the enumerator dictates every draw, so chooser dispatch is
/// never the bottleneck here.
template <class KernelT, class StateT>
MarkovResult enumerate_chain(const Rrg& rrg, const KernelT& kernel,
                             const MarkovOptions& options) {
  const Digraph& g = rrg.graph();
  const double num_nodes = static_cast<double>(rrg.num_nodes());

  MarkovResult result;

  std::unordered_map<std::vector<std::uint8_t>, std::uint32_t, ByteHash> ids;
  std::vector<StateT> states;
  std::vector<std::vector<Transition>> transitions;
  std::vector<double> expected_firings;  // per state, per cycle
  const std::size_t transition_cap = options.max_states * 8;

  const auto intern = [&](const StateT& state) -> std::uint32_t {
    auto bytes = encode_state(kernel, state);
    const auto it = ids.find(bytes);
    if (it != ids.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(states.size());
    ids.emplace(std::move(bytes), id);
    states.push_back(state);
    return id;
  };

  intern(kernel.initial_state());
  std::size_t num_transitions = 0;

  for (std::uint32_t id = 0; id < states.size(); ++id) {
    if (states.size() > options.max_states ||
        num_transitions > transition_cap) {
      return result;  // ok == false: state space too large
    }
    const StateT base = states[id];  // copy: `states` may reallocate
    const std::vector<NodeId> sampling = kernel.sampling_nodes(base);
    const std::vector<NodeId> latency = kernel.latency_nodes(base);

    // Enumerate all guard * latency draw combinations as one mixed-radix
    // counter: positions [0, sampling.size()) choose guards (radix =
    // in-degree), the rest choose telescopic latencies (radix 2, digit 1
    // = slow). A draw that the step does not consume (the node does not
    // fire) splits the transition into branches with identical successor
    // states; the chain aggregates their probability mass, so the result
    // is unchanged.
    const std::size_t dims = sampling.size() + latency.size();
    std::vector<std::size_t> combo(dims, 0);
    std::vector<Transition> outgoing;
    double rate = 0.0;
    while (true) {
      double prob = 1.0;
      for (std::size_t i = 0; i < sampling.size(); ++i) {
        const EdgeId e = g.in_edges(sampling[i])[combo[i]];
        prob *= rrg.gamma(e);
      }
      for (std::size_t i = 0; i < latency.size(); ++i) {
        const double fast = rrg.telescopic(latency[i]).fast_prob;
        prob *= combo[sampling.size() + i] == 0 ? fast : 1.0 - fast;
      }
      StateT next = base;
      const auto chooser = [&](NodeId n) -> std::size_t {
        for (std::size_t i = 0; i < sampling.size(); ++i) {
          if (sampling[i] == n) return combo[i];
        }
        ELRR_ASSERT(false, "chooser called for non-sampling node");
        return 0;
      };
      const auto latency_chooser = [&](NodeId n) -> bool {
        for (std::size_t i = 0; i < latency.size(); ++i) {
          if (latency[i] == n) return combo[sampling.size() + i] != 0;
        }
        ELRR_ASSERT(false, "latency chooser called for busy node");
        return false;
      };
      const std::uint32_t firings =
          kernel.step(next, chooser, latency_chooser);
      rate += prob * static_cast<double>(firings);
      outgoing.push_back({intern(next), prob});

      // Advance the mixed-radix combination counter.
      std::size_t i = 0;
      for (; i < dims; ++i) {
        const std::size_t radix =
            i < sampling.size() ? g.in_degree(sampling[i]) : 2;
        if (++combo[i] < radix) break;
        combo[i] = 0;
      }
      if (i == dims) break;
    }
    num_transitions += outgoing.size();
    transitions.push_back(std::move(outgoing));
    expected_firings.push_back(rate);
  }

  const std::size_t n = states.size();
  // Damped power iteration from the initial state.
  std::vector<double> mu(n, 0.0), next_mu(n, 0.0);
  mu[0] = 1.0;
  const double d = options.damping;
  std::size_t iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    std::fill(next_mu.begin(), next_mu.end(), 0.0);
    for (std::size_t s = 0; s < n; ++s) {
      if (mu[s] == 0.0) continue;
      next_mu[s] += d * mu[s];
      const double mass = (1.0 - d) * mu[s];
      for (const Transition& t : transitions[s]) {
        next_mu[t.next] += mass * t.prob;
      }
    }
    double delta = 0.0;
    for (std::size_t s = 0; s < n; ++s) delta += std::abs(next_mu[s] - mu[s]);
    mu.swap(next_mu);
    if (delta < options.tolerance) break;
  }

  double theta = 0.0;
  for (std::size_t s = 0; s < n; ++s) theta += mu[s] * expected_firings[s];
  result.ok = true;
  result.theta = theta / num_nodes;
  result.num_states = n;
  result.num_transitions = num_transitions;
  result.iterations = iter;
  return result;
}

}  // namespace

MarkovResult exact_throughput(const Rrg& rrg, const MarkovOptions& options) {
  if (FlatKernel::supports(rrg)) {
    const FlatKernel kernel(rrg);
    return enumerate_chain<FlatKernel, FlatState>(rrg, kernel, options);
  }
  const Kernel kernel(rrg);
  return enumerate_chain<Kernel, SyncState>(rrg, kernel, options);
}

}  // namespace elrr::sim
