#include "sim/kernel.hpp"

#include <algorithm>

#include "graph/topo.hpp"
#include "support/error.hpp"

namespace elrr::sim {

namespace {
/// Deposit one token at the consumer side of an edge, annihilating against
/// pending anti-tokens first.
void deposit(EdgeState& edge) {
  if (edge.anti > 0) {
    --edge.anti;
  } else {
    ++edge.ready;
    ELRR_ASSERT(edge.ready < kTokenQueueCap,
                "unbounded token accumulation: is the RRG strongly "
                "connected?");
  }
}
}  // namespace

std::vector<std::uint8_t> SyncState::encode() const {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(edges.size() * 4 + pending_guard.size());
  for (const EdgeState& e : edges) {
    // Ready/anti counts stay small in live strongly connected systems
    // (bounded by cycle token sums); 16 bits are plenty, asserted below.
    ELRR_ASSERT(e.ready < 0x8000 && e.anti < 0x8000,
                "state encoding overflow");
    bytes.push_back(static_cast<std::uint8_t>(e.ready & 0xff));
    bytes.push_back(static_cast<std::uint8_t>(e.ready >> 8));
    bytes.push_back(static_cast<std::uint8_t>(e.anti & 0xff));
    bytes.push_back(static_cast<std::uint8_t>(e.anti >> 8));
    std::uint8_t packed = 0;
    int bit = 0;
    for (std::uint8_t inflight : e.inflight) {
      packed = static_cast<std::uint8_t>(packed | (inflight << bit));
      if (++bit == 8) {
        bytes.push_back(packed);
        packed = 0;
        bit = 0;
      }
    }
    if (bit != 0) bytes.push_back(packed);
  }
  for (std::int8_t g : pending_guard) {
    bytes.push_back(static_cast<std::uint8_t>(g));
  }
  bytes.insert(bytes.end(), busy.begin(), busy.end());
  return bytes;
}

Kernel::Kernel(const Rrg& rrg) : rrg_(rrg) {
  rrg_.validate();
  const auto order = graph::topological_order(
      rrg_.graph(), [&](EdgeId e) { return rrg_.buffers(e) == 0; });
  ELRR_ASSERT(order.has_value(),
              "live RRG cannot have a zero-buffer cycle");
  comb_order_ = *order;
  for (NodeId n = 0; n < rrg_.num_nodes(); ++n) {
    if (rrg_.is_early(n)) early_nodes_.push_back(n);
    if (rrg_.is_telescopic(n)) telescopic_nodes_.push_back(n);
  }
}

SyncState Kernel::initial_state() const {
  SyncState state;
  state.edges.resize(rrg_.num_edges());
  for (EdgeId e = 0; e < rrg_.num_edges(); ++e) {
    EdgeState& edge = state.edges[e];
    edge.inflight.assign(static_cast<std::size_t>(rrg_.buffers(e)), 0);
    edge.ready = std::max(rrg_.tokens(e), 0);
    edge.anti = std::max(-rrg_.tokens(e), 0);
  }
  state.pending_guard.assign(rrg_.num_nodes(), kNoGuard);
  state.busy.assign(rrg_.num_nodes(), 0);
  return state;
}

std::vector<NodeId> Kernel::sampling_nodes(const SyncState& state) const {
  std::vector<NodeId> nodes;
  for (NodeId n : early_nodes_) {
    if (state.pending_guard[n] == kNoGuard && state.busy[n] == 0) {
      nodes.push_back(n);
    }
  }
  return nodes;
}

std::vector<NodeId> Kernel::latency_nodes(const SyncState& state) const {
  std::vector<NodeId> nodes;
  for (NodeId n : telescopic_nodes_) {
    if (state.busy[n] == 0) nodes.push_back(n);
  }
  return nodes;
}

std::uint32_t Kernel::step(SyncState& state, const GuardChooser& choose_guard,
                           const LatencyChooser& choose_latency,
                           std::uint8_t* fired) const {
  const Digraph& g = rrg_.graph();
  std::uint32_t total_firings = 0;
  if (fired != nullptr) std::fill(fired, fired + rrg_.num_nodes(), 0);

  for (NodeId n : comb_order_) {
    if (state.busy[n] > 0) continue;  // mid slow telescopic operation
    const auto& inputs = g.in_edges(n);
    bool fires = false;
    if (!rrg_.is_early(n)) {
      fires = true;
      for (EdgeId e : inputs) {
        if (state.edges[e].ready <= 0) {
          fires = false;
          break;
        }
      }
      if (fires) {
        for (EdgeId e : inputs) --state.edges[e].ready;
      }
    } else {
      std::int8_t guard = state.pending_guard[n];
      if (guard == kNoGuard) {
        const std::size_t pos = choose_guard(n);
        ELRR_ASSERT(pos < inputs.size(), "guard chooser out of range");
        guard = static_cast<std::int8_t>(pos);
        state.pending_guard[n] = guard;
      }
      const EdgeId guard_edge = inputs[static_cast<std::size_t>(guard)];
      if (state.edges[guard_edge].ready > 0) {
        fires = true;
        state.pending_guard[n] = kNoGuard;  // firing completes the guard
        for (std::size_t pos = 0; pos < inputs.size(); ++pos) {
          EdgeState& edge = state.edges[inputs[pos]];
          if (pos == static_cast<std::size_t>(guard)) {
            --edge.ready;
          } else if (edge.ready > 0) {
            --edge.ready;  // late token already there: cancel now
          } else {
            ++edge.anti;  // anti-token awaits the straggler
            ELRR_ASSERT(edge.anti < kTokenQueueCap, "anti-token runaway");
          }
        }
      }
    }

    if (fires) {
      if (fired != nullptr) fired[n] = 1;
      ++total_firings;
      const bool slow = rrg_.is_telescopic(n) && choose_latency &&
                        choose_latency(n);
      if (slow) {
        // Busy for slow_extra further cycles; outputs withheld until the
        // countdown (decremented at each end-of-cycle) reaches 1.
        state.busy[n] =
            static_cast<std::uint8_t>(rrg_.telescopic(n).slow_extra + 1);
      } else {
        for (EdgeId e : g.out_edges(n)) {
          EdgeState& edge = state.edges[e];
          if (rrg_.buffers(e) == 0) {
            deposit(edge);  // combinational: consumable this very cycle
          } else {
            ELRR_ASSERT(edge.inflight.back() == 0,
                        "double injection into EB chain");
            edge.inflight.back() = 1;
          }
        }
      }
    }
  }

  // End of cycle: advance every EB chain by one stage.
  for (EdgeState& edge : state.edges) {
    if (edge.inflight.empty()) continue;
    if (edge.inflight.front() != 0) deposit(edge);
    for (std::size_t k = 0; k + 1 < edge.inflight.size(); ++k) {
      edge.inflight[k] = edge.inflight[k + 1];
    }
    edge.inflight.back() = 0;
  }
  // Slow telescopic countdowns; release the withheld outputs when the
  // countdown hits 1 (they are registered, so an EB chain receives them
  // *after* this cycle's shift: total added latency is exactly
  // slow_extra on every path, and the node refires 1 + slow_extra cycles
  // after the slow firing).
  for (NodeId n : telescopic_nodes_) {
    if (state.busy[n] == 0) continue;
    if (--state.busy[n] == 1) {
      for (EdgeId e : g.out_edges(n)) {
        EdgeState& edge = state.edges[e];
        if (rrg_.buffers(e) == 0) {
          deposit(edge);  // consumable next cycle (registered release)
        } else {
          ELRR_ASSERT(edge.inflight.back() == 0,
                      "double injection into EB chain");
          edge.inflight.back() = 1;
        }
      }
    }
  }
  return total_firings;
}

}  // namespace elrr::sim
