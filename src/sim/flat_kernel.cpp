#include "sim/flat_kernel.hpp"

#include <algorithm>

#include "graph/topo.hpp"

namespace elrr::sim {

const char* to_string(FlatCap cap) {
  switch (cap) {
    case FlatCap::kNone:
      return "none";
    case FlatCap::kDeepEbChain:
      return "EB chain deeper than the 64-bit ring window";
    case FlatCap::kTooManyNodes:
      return "more than 65535 nodes";
    case FlatCap::kInDegreeCap:
      return "in-degree beyond the 8-bit node program field";
    case FlatCap::kOutDegreeCap:
      return "out-degree beyond the 8-bit node program field";
  }
  return "unknown";
}

FlatCap FlatKernel::unsupported_reason(const Rrg& rrg) {
  if (rrg.num_nodes() > 0xffff) {
    return FlatCap::kTooManyNodes;  // NodeProg::node is u16
  }
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    if (rrg.buffers(e) > 64) {
      return FlatCap::kDeepEbChain;  // bit-ring window is one u64
    }
  }
  for (NodeId n = 0; n < rrg.num_nodes(); ++n) {
    // Degree fields are u8 (127 for early nodes: the guard encoding).
    if (rrg.graph().in_degree(n) > (rrg.is_early(n) ? 127u : 255u)) {
      return FlatCap::kInDegreeCap;
    }
    if (rrg.graph().out_degree(n) > 255) return FlatCap::kOutDegreeCap;
  }
  return FlatCap::kNone;
}

FlatKernel::FlatKernel(const Rrg& rrg) : rrg_(rrg) {
  rrg_.validate();
  ELRR_REQUIRE(supports(rrg),
               "FlatKernel supports EB chains of at most 64 buffers; use "
               "sim::Kernel for deeper chains");
  num_nodes_ = rrg.num_nodes();
  num_edges_ = static_cast<EdgeId>(rrg.num_edges());
  const Digraph& g = rrg.graph();

  const auto topo = graph::topological_order(
      g, [&](EdgeId e) { return rrg.buffers(e) == 0; });
  ELRR_ASSERT(topo.has_value(), "live RRG cannot have a zero-buffer cycle");

  // Level schedule: level 0 = registered producers (every in-edge
  // buffered), level L+1 = longest zero-buffer chain of length L+1.
  // Stable-sorting the topological order by level keeps it topological
  // (a comb edge strictly raises the consumer's level) while grouping
  // independent nodes: every in-cycle store-to-load chain now spans
  // exactly one level boundary instead of an arbitrary prefix of the
  // firing order.
  std::vector<std::uint32_t> level(num_nodes_, 0);
  for (const NodeId n : *topo) {
    std::uint32_t lv = 0;
    for (const EdgeId e : g.in_edges(n)) {
      if (rrg.buffers(e) == 0) lv = std::max(lv, level[g.src(e)] + 1);
    }
    level[n] = lv;
    num_levels_ = std::max<std::size_t>(num_levels_, lv + 1);
  }
  order_ = *topo;
  std::stable_sort(order_.begin(), order_.end(),
                   [&](NodeId a, NodeId b) { return level[a] < level[b]; });

  // Renumber edges into consumer-contiguous slots: walking the firing
  // order, each node's in-edges (in in_edges(n) order, so guard positions
  // still index straight into the run) claim the next in_degree slots.
  // Every edge has exactly one consumer, so this is a bijection -- and
  // the step's input reads stream the token array front to back.
  slot_of_edge_.assign(num_edges_, 0);
  edge_of_slot_.assign(num_edges_, 0);
  EdgeId next_slot = 0;
  for (const NodeId n : order_) {
    for (const EdgeId e : g.in_edges(n)) {
      slot_of_edge_[e] = next_slot;
      edge_of_slot_[next_slot] = e;
      ++next_slot;
    }
  }
  ELRR_ASSERT(next_slot == num_edges_, "slot renumbering must be a bijection");

  // Build the node program in the same firing order; out-edge slices are
  // slot ids so the inner loop never leaves slot space.
  prog_.reserve(num_nodes_);
  out_csr_.reserve(num_edges_);
  EdgeId in_base = 0;
  for (const NodeId n : order_) {
    NodeProg p;
    p.node = static_cast<std::uint16_t>(n);
    p.in_begin = in_base;
    p.in_count = static_cast<std::uint8_t>(g.in_degree(n));
    in_base += static_cast<EdgeId>(g.in_degree(n));
    p.out_begin = static_cast<std::uint32_t>(out_csr_.size());
    // The out slice groups combinational edges first, buffered ones last
    // (emit_masked relies on the split; order within a group is free
    // since each out-edge is touched exactly once).
    for (EdgeId e : g.out_edges(n)) {
      if (rrg.buffers(e) == 0) {
        out_csr_.push_back(slot_of_edge_[e]);
        ++p.out_comb;
      }
    }
    for (EdgeId e : g.out_edges(n)) {
      if (rrg.buffers(e) > 0) {
        out_csr_.push_back(slot_of_edge_[e]);
        ++p.out_ring;
      }
    }
    // Out-degree-1 nodes store their slot id inline (see NodeProg).
    if (g.out_degree(n) == 1) {
      const EdgeId e = g.out_edges(n).front();
      p.out_begin = slot_of_edge_[e];
      if (rrg.buffers(e) > 0) p.flags |= NodeProg::kOut1Ring;
    }
    if (rrg.is_early(n)) p.flags |= NodeProg::kEarly;
    if (rrg.is_telescopic(n)) {
      p.slow_countdown =
          static_cast<std::uint8_t>(rrg.telescopic(n).slow_extra + 1);
      telescopic_prog_.push_back(static_cast<std::uint32_t>(prog_.size()));
    }
    prog_.push_back(p);
  }
  // Stable NodeId-ordered views (the enumerator / test API).
  for (NodeId n = 0; n < num_nodes_; ++n) {
    if (rrg.is_early(n)) early_nodes_.push_back(n);
    if (rrg.is_telescopic(n)) telescopic_nodes_.push_back(n);
  }

  inject_bit_.assign(num_edges_, 0);
  buffers_.assign(num_edges_, 0);
  for (EdgeId e = 0; e < num_edges_; ++e) {
    const int r = rrg.buffers(e);
    const EdgeId s = slot_of_edge_[e];
    buffers_[s] = r;
    if (r > 0) inject_bit_[s] = std::uint64_t{1} << (r - 1);
  }
  for (EdgeId s = 0; s < num_edges_; ++s) {
    if (buffers_[s] > 0) buffered_slots_.push_back(s);
  }
}

FlatState FlatKernel::initial_state() const {
  FlatState state;
  state.tokens.resize(num_edges_);
  state.window.assign(num_edges_, 0);
  for (EdgeId s = 0; s < num_edges_; ++s) {
    state.tokens[s] = rrg_.tokens(edge_of_slot_[s]);
  }
  state.pending_guard.assign(num_nodes_, kNoGuard);
  state.busy.assign(num_nodes_, 0);
  return state;
}

FlatBatchState FlatKernel::initial_batch_state(std::size_t runs) const {
  ELRR_REQUIRE(runs > 0, "batch needs at least one run");
  FlatBatchState state;
  state.runs = runs;
  state.tokens.resize(num_edges_ * runs);
  state.window.assign(num_edges_ * runs, 0);
  for (EdgeId s = 0; s < num_edges_; ++s) {
    for (std::size_t r = 0; r < runs; ++r) {
      state.tokens[s * runs + r] = rrg_.tokens(edge_of_slot_[s]);
    }
  }
  state.pending_guard.assign(num_nodes_ * runs, kNoGuard);
  state.busy.assign(num_nodes_ * runs, 0);
  return state;
}

FlatState FlatKernel::extract_run(const FlatBatchState& state,
                                  std::size_t run) const {
  ELRR_REQUIRE(run < state.runs, "run index out of range");
  FlatState flat;
  flat.tokens.resize(num_edges_);
  flat.window.resize(num_edges_);
  for (EdgeId s = 0; s < num_edges_; ++s) {
    flat.tokens[s] = state.tokens[s * state.runs + run];
    flat.window[s] = state.window[s * state.runs + run];
  }
  flat.pending_guard.resize(num_nodes_);
  flat.busy.resize(num_nodes_);
  for (NodeId n = 0; n < num_nodes_; ++n) {
    flat.pending_guard[n] = state.pending_guard[n * state.runs + run];
    flat.busy[n] = state.busy[n * state.runs + run];
  }
  return flat;
}

SyncState FlatKernel::to_sync(const FlatState& state) const {
  SyncState sync;
  sync.edges.resize(num_edges_);
  for (EdgeId e = 0; e < num_edges_; ++e) {
    const EdgeId s = slot_of_edge_[e];
    EdgeState& edge = sync.edges[e];
    edge.ready = std::max(state.tokens[s], 0);
    edge.anti = std::max(-state.tokens[s], 0);
    edge.inflight.resize(static_cast<std::size_t>(buffers_[s]));
    for (int k = 0; k < buffers_[s]; ++k) {
      edge.inflight[static_cast<std::size_t>(k)] =
          static_cast<std::uint8_t>((state.window[s] >> k) & 1);
    }
  }
  sync.pending_guard = state.pending_guard;
  sync.busy = state.busy;
  return sync;
}

FlatState FlatKernel::from_sync(const SyncState& state) const {
  ELRR_REQUIRE(state.edges.size() == num_edges_,
               "state does not match this kernel's RRG");
  FlatState flat;
  flat.tokens.resize(num_edges_);
  flat.window.assign(num_edges_, 0);
  for (EdgeId e = 0; e < num_edges_; ++e) {
    const EdgeId s = slot_of_edge_[e];
    const EdgeState& edge = state.edges[e];
    ELRR_REQUIRE(edge.ready == 0 || edge.anti == 0,
                 "ready and anti tokens cannot coexist on one edge");
    flat.tokens[s] = edge.ready - edge.anti;
    for (std::size_t k = 0; k < edge.inflight.size(); ++k) {
      if (edge.inflight[k] != 0) flat.window[s] |= std::uint64_t{1} << k;
    }
  }
  flat.pending_guard = state.pending_guard;
  flat.busy = state.busy;
  return flat;
}

std::vector<std::uint8_t> FlatKernel::encode(const FlatState& state) const {
  // Byte-identical to SyncState::encode() of the corresponding state --
  // EdgeId order, translated from slot order -- so enumeration caches
  // built against either kernel agree.
  std::vector<std::uint8_t> bytes;
  bytes.reserve(num_edges_ * 4 + num_nodes_ * 2);
  for (EdgeId e = 0; e < num_edges_; ++e) {
    const EdgeId s = slot_of_edge_[e];
    const std::int32_t ready = std::max(state.tokens[s], 0);
    const std::int32_t anti = std::max(-state.tokens[s], 0);
    ELRR_ASSERT(ready < 0x8000 && anti < 0x8000, "state encoding overflow");
    bytes.push_back(static_cast<std::uint8_t>(ready & 0xff));
    bytes.push_back(static_cast<std::uint8_t>(ready >> 8));
    bytes.push_back(static_cast<std::uint8_t>(anti & 0xff));
    bytes.push_back(static_cast<std::uint8_t>(anti >> 8));
    // The window's low R(e) bits, least significant first, in byte groups
    // -- the same packing SyncState::encode applies to `inflight`.
    for (int base = 0; base < buffers_[s]; base += 8) {
      bytes.push_back(static_cast<std::uint8_t>(
          (state.window[s] >> base) & 0xff));
    }
  }
  for (std::int8_t guard : state.pending_guard) {
    bytes.push_back(static_cast<std::uint8_t>(guard));
  }
  bytes.insert(bytes.end(), state.busy.begin(), state.busy.end());
  return bytes;
}

std::vector<NodeId> FlatKernel::sampling_nodes(const FlatState& state) const {
  std::vector<NodeId> nodes;
  for (NodeId n : early_nodes_) {
    if (state.pending_guard[n] == kNoGuard && state.busy[n] == 0) {
      nodes.push_back(n);
    }
  }
  return nodes;
}

std::vector<NodeId> FlatKernel::latency_nodes(const FlatState& state) const {
  std::vector<NodeId> nodes;
  for (NodeId n : telescopic_nodes_) {
    if (state.busy[n] == 0) nodes.push_back(n);
  }
  return nodes;
}

}  // namespace elrr::sim
