#pragma once

/// \file choosers.hpp
/// Zero-dispatch guard/latency choosers for FlatKernel's templated step.
///
/// The Monte-Carlo hot loop samples one guard per early-node firing slot
/// and one latency per telescopic firing. The reference driver built a
/// std::vector<double> of gammas per node and went through
/// std::function-wrapped lambdas into Rng::discrete; here the tables are
/// precomputed once into flat arrays and the choosers are plain functors,
/// so the compiler inlines the whole draw into the step loop.
///
/// Reproducibility contract: every sample consumes exactly one raw draw
/// from the node's stream, and *both* simulate paths (FlatKernel fast
/// path and reference-Kernel fallback) draw through these same tables --
/// that shared arithmetic, not any equivalence to Rng::discrete, is what
/// makes a fixed seed produce bit-identical theta on either path (the
/// differential tests pin this down). The integer thresholds are
/// truncated CDFs, so selections may differ from Rng::discrete at
/// boundary draws; LatencyTable's ceil'd threshold, by contrast, is an
/// exact integer rewrite of `uniform01() >= fast_prob`.

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/rrg.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace elrr::sim {

/// A uniform 53-bit draw: the integer whose scaling by 2^-53 is
/// Rng::uniform01(). Comparing it against precomputed integer thresholds
/// replaces the per-draw floating-point CDF walk with integer compares.
inline std::uint64_t draw53(Rng& rng) { return rng() >> 11; }
inline constexpr double kScale53 = 9007199254740992.0;  // 2^53

/// Per-node guard CDF tables: each early node's input gammas as a
/// contiguous slice of cumulative 53-bit integer thresholds. A draw u
/// selects the first position with u < cdf[i]; the last threshold is
/// saturated to 2^53, absorbing rounding. Simple nodes get empty slices.
class GuardTable {
 public:
  explicit GuardTable(const Rrg& rrg) {
    const std::size_t n = rrg.num_nodes();
    off_.assign(n + 1, 0);
    for (NodeId v = 0; v < n; ++v) {
      off_[v + 1] = off_[v];
      if (!rrg.is_early(v)) continue;
      double total = 0.0;
      for (EdgeId e : rrg.graph().in_edges(v)) {
        const double w = rrg.gamma(e);
        ELRR_REQUIRE(w >= 0.0, "negative gamma on an early input");
        total += w;
      }
      ELRR_REQUIRE(total > 0.0, "all gammas zero on an early node");
      double prefix = 0.0;
      for (EdgeId e : rrg.graph().in_edges(v)) {
        prefix += rrg.gamma(e);
        cdf_.push_back(static_cast<std::uint64_t>(prefix / total * kScale53));
        ++off_[v + 1];
      }
      cdf_.back() = static_cast<std::uint64_t>(kScale53);  // absorb rounding
    }
  }

  /// Samples an input position for early node n, consuming exactly one
  /// draw from `rng` (the same stream consumption as Rng::uniform01).
  /// The CDF is nondecreasing, so the selected position -- the first i
  /// with u < cdf[i] -- equals the count of thresholds <= u; summing
  /// comparison results replaces the early-exit walk's data-dependent
  /// branch (one mispredict per draw at simulation entropy rates) with
  /// in_degree flagless adds.
  std::size_t sample(NodeId n, Rng& rng) const {
    const std::uint32_t begin = off_[n], end = off_[n + 1];
    const std::uint64_t u = draw53(rng);
    std::uint32_t sel = 0;
    for (std::uint32_t i = begin; i + 1 < end; ++i) {
      sel += static_cast<std::uint32_t>(u >= cdf_[i]);
    }
    return sel;
  }

 private:
  std::vector<std::uint32_t> off_;  ///< per node: slice into cdf_
  std::vector<std::uint64_t> cdf_;
};

/// Per-node fast-path probabilities for telescopic latency draws, as
/// 53-bit thresholds: slow iff draw >= threshold, exactly the integer
/// form of `uniform01() >= fast_prob`.
class LatencyTable {
 public:
  explicit LatencyTable(const Rrg& rrg) {
    threshold_.resize(rrg.num_nodes());
    for (NodeId n = 0; n < rrg.num_nodes(); ++n) {
      // ceil: u * 2^-53 >= p  <=>  u >= ceil(p * 2^53) for integer u.
      threshold_[n] = static_cast<std::uint64_t>(
          std::ceil(rrg.telescopic(n).fast_prob * kScale53));
    }
  }

  /// True = slow path; consumes exactly one draw from `rng`.
  bool sample(NodeId n, Rng& rng) const {
    return draw53(rng) >= threshold_[n];
  }

 private:
  std::vector<std::uint64_t> threshold_;
};

/// Functor binding a GuardTable to per-node RNG streams; passes through
/// FlatKernel::step's GuardFn template parameter with zero dispatch.
struct TableGuardChooser {
  const GuardTable* table;
  Rng* streams;  ///< one independent stream per node
  std::size_t operator()(NodeId n) const {
    return table->sample(n, streams[n]);
  }
};

/// Functor binding a LatencyTable to the same per-node streams (guard and
/// latency draws of one node interleave on its stream, exactly like the
/// reference driver).
struct TableLatencyChooser {
  const LatencyTable* table;
  Rng* streams;
  bool operator()(NodeId n) const { return table->sample(n, streams[n]); }
};

/// Per-run, per-node RNG streams for the batched choosers, laid out
/// node-major (`n * runs + run`): the batched step visits one node for
/// all K lanes before moving on, so a node's K 32-byte xoshiro states
/// sharing adjacent cache lines beats the run-major layout (which
/// strides lane draws num_nodes states apart). Each run's streams are
/// derived exactly as the solo driver derives them -- one master per run
/// seed, split once per node in node order -- so lane r of node n is
/// bit-identical to solo run r's stream for node n.
class RunStreams {
 public:
  RunStreams(const std::uint64_t* run_seeds, std::size_t runs,
             std::size_t num_nodes)
      : runs_(runs) {
    std::vector<Rng> masters;
    masters.reserve(runs);
    for (std::size_t r = 0; r < runs; ++r) masters.emplace_back(run_seeds[r]);
    streams_.resize(num_nodes * runs);
    for (std::size_t n = 0; n < num_nodes; ++n) {
      for (std::size_t r = 0; r < runs; ++r) {
        streams_[n * runs + r] = masters[r].split();
      }
    }
  }

  Rng* data() { return streams_.data(); }
  std::size_t runs() const { return runs_; }

 private:
  std::size_t runs_ = 0;
  std::vector<Rng> streams_;
};

/// Guard chooser for FlatKernel::step_batch: run r of the batch draws
/// from its own per-node streams (node-major, `n * runs + run`; see
/// RunStreams), so every run consumes exactly the stream the solo driver
/// would.
struct BatchTableGuardChooser {
  const GuardTable* table;
  Rng* streams;
  std::size_t runs;
  std::size_t operator()(NodeId n, std::size_t run) const {
    return table->sample(n, streams[n * runs + run]);
  }
};

/// Latency chooser for FlatKernel::step_batch on telescopic graphs: run r
/// draws from the same node-major streams as its guard chooser, so guard
/// and latency draws of one node interleave on one stream exactly like
/// the solo driver's.
struct BatchTableLatencyChooser {
  const LatencyTable* table;
  Rng* streams;
  std::size_t runs;
  bool operator()(NodeId n, std::size_t run) const {
    return table->sample(n, streams[n * runs + run]);
  }
};

}  // namespace elrr::sim
