#pragma once

/// \file markov.hpp
/// Exact throughput of small elastic systems with early evaluation by
/// Markov-chain analysis (the method the paper uses for its motivational
/// example in Section 1.4: Theta(fig 1b) = 0.491 at alpha = 0.5, and
/// Theta(fig 2) = 1/(3 - 2 alpha)).
///
/// The chain's states are the reachable SyncStates of the shared kernel;
/// transitions branch over the guard choices of early nodes whose previous
/// firing has completed, weighted by the product of their probabilities.
/// The long-run firing rate is computed by damped power iteration from the
/// initial state (correct for periodic chains and multiple recurrent
/// classes alike, since damping preserves per-class stationarity and
/// absorption probabilities).

#include <cstddef>
#include <optional>

#include "core/rrg.hpp"

namespace elrr::sim {

struct MarkovOptions {
  std::size_t max_states = 200000;   ///< enumeration cap
  double damping = 0.05;             ///< self-loop weight for aperiodicity
  double tolerance = 1e-11;          ///< L1 convergence threshold
  std::size_t max_iterations = 200000;
};

struct MarkovResult {
  bool ok = false;          ///< false if max_states was exceeded
  double theta = 0.0;       ///< exact long-run firings/cycle/node
  std::size_t num_states = 0;
  std::size_t num_transitions = 0;
  std::size_t iterations = 0;
};

/// Exact throughput; `ok == false` if the reachable state space exceeds
/// `options.max_states` (use the simulator instead).
MarkovResult exact_throughput(const Rrg& rrg,
                              const MarkovOptions& options = {});

}  // namespace elrr::sim
