#pragma once

/// \file flat_kernel.hpp
/// Allocation-free, cache-friendly fast path of the synchronous elastic
/// semantics. Implements *exactly* the transition function of sim::Kernel
/// (kernel.hpp) -- differential tests assert bit-exact agreement per cycle
/// -- but with a data layout built for throughput:
///
///  * structure of arrays: all edge `ready`/`anti` counters and node
///    `pending_guard`/`busy` flags live in contiguous vectors (FlatState),
///    so a step streams over dense arrays instead of chasing
///    vector-of-vector payloads;
///  * bit-ring channels: an EB chain's occupancy is one uint64 window per
///    edge (bit k set <=> a token arrives at the consumer after k + 1
///    end-of-cycle boundaries). Injection ORs bit R-1, the end-of-cycle
///    advance tests bit 0 and shifts the window right -- O(1) per edge,
///    no inner shift loop, no per-edge heap storage (this caps supported
///    chains at 64 EBs; see supports());
///  * level-scheduled edge renumbering: nodes are sorted into
///    combinational *levels* (registered producers -- no zero-buffer
///    in-edges -- first, then combs by longest zero-buffer distance), and
///    every edge is renumbered to an internal *slot* assigned in consumer
///    order, so each node's in-edges occupy one contiguous slot run.
///    The per-node in-edge CSR indirection collapses into a (base, degree)
///    slice, input token reads stream the state array front to back, and
///    an in-cycle store-to-load chain spans exactly one level;
///  * per-node programs: kind/degree/latency attributes are packed into
///    dense 16-byte records at construction, so the inner loop never
///    touches Rrg or Digraph;
///  * templated choosers and lane width: step() is a template over the
///    guard/latency chooser types, and step_batch<K> over the lane width,
///    so Monte-Carlo drivers pay zero std::function dispatch (see
///    choosers.hpp) and the K-lane token movement vectorizes; flexible
///    std::function-style lambdas still work for the Markov enumerator.
///
/// See src/sim/README.md for the full architecture note.

#include <cstdint>
#include <vector>

#include "core/rrg.hpp"
#include "sim/kernel.hpp"
#include "support/error.hpp"

namespace elrr::sim {

/// Full synchronous state in structure-of-arrays layout. Semantically
/// identical to SyncState (FlatKernel::to_sync converts); all vectors are
/// sized once by initial_state() and never reallocated by step().
///
/// Per-edge quantities are indexed by the kernel's internal *slot* order
/// (each consumer's in-edges contiguous, consumers in level-scheduled
/// firing order), not by EdgeId; the conversions to/from SyncState and
/// encode() translate through the kernel's slot permutation, so the
/// external representation is unchanged.
///
/// Ready and anti-token counters are merged into one signed count per
/// edge: `tokens > 0` is the reference state's `ready`, `tokens < 0` is
/// `-anti`. The merge is lossless because the reference semantics keep
/// `ready * anti == 0` invariant -- deposits annihilate against pending
/// anti-tokens before becoming ready, and anti-tokens are only minted
/// while no ready token is present. It also makes every token movement a
/// single unconditional +-1: a deposit is ++tokens (annihilation is
/// automatic), and an early firing decrements *all* its inputs (selected
/// token, late-token cancellation and anti-token mint are all -1).
struct FlatState {
  std::vector<std::int32_t> tokens;    ///< per slot: ready (>0) / -anti (<0)
  std::vector<std::uint64_t> window;   ///< per slot: EB-chain bit-ring
  std::vector<std::int8_t> pending_guard;  ///< per node (kNoGuard = none)
  std::vector<std::uint8_t> busy;          ///< per node: slow countdown

  bool operator==(const FlatState&) const = default;
};

/// Latency chooser that never takes the slow path; the default for
/// non-telescopic workloads (never called for non-telescopic nodes, so it
/// costs nothing). The two-argument form serves step_batch, whose
/// choosers take a run index.
struct NeverSlow {
  bool operator()(NodeId) const { return false; }
  bool operator()(NodeId, std::size_t) const { return false; }
};

/// Why the flat layout cannot represent an RRG (kNone = it can). Every
/// cap mirrors a fixed-width field of the flat encoding; the driver
/// reports the reason through SimReport so fallbacks to the reference
/// kernel are observable instead of silently slow.
enum class FlatCap : std::uint8_t {
  kNone = 0,       ///< flat fast path available
  kDeepEbChain,    ///< an EB chain deeper than the 64-bit ring window
  kTooManyNodes,   ///< more nodes than NodeProg::node (u16) can index
  kInDegreeCap,    ///< in-degree beyond NodeProg::in_count (u8; i8 guards)
  kOutDegreeCap,   ///< out-degree beyond NodeProg::out_comb/out_ring (u8)
};

/// Human-readable form of a FlatCap (stable, for logs and reports).
const char* to_string(FlatCap cap);

/// K interleaved independent runs in one state block: every per-edge /
/// per-node quantity is stored K-wide (index `id * K + run`, lane-major),
/// so the masked per-lane token updates are contiguous K-vectors the
/// compiler vectorizes. Stepping all runs through one pass amortizes the
/// graph metadata across runs and gives the CPU K independent dependency
/// chains -- the instruction-level analogue of the thread-level multi-run
/// driver (essential on few-core hosts). Runs are bit-exactly the runs
/// the solo path would produce; the differential tests pin that for every
/// supported lane width.
struct FlatBatchState {
  std::size_t runs = 0;
  std::vector<std::int32_t> tokens;
  std::vector<std::uint64_t> window;
  std::vector<std::int8_t> pending_guard;
  std::vector<std::uint8_t> busy;
};

class FlatKernel {
 public:
  /// Precomputes the flat structure. The Rrg must outlive the kernel and
  /// stay structurally unchanged while the kernel is in use.
  explicit FlatKernel(const Rrg& rrg);
  FlatKernel(Rrg&&) = delete;  // would dangle: the kernel keeps a reference

  /// True iff the flat layout can represent the RRG: every EB chain fits
  /// the 64-bit ring window and every degree/size fits its NodeProg
  /// field. Callers fall back to the reference Kernel for (rare) graphs
  /// beyond the caps; unsupported_reason() names the first violated cap.
  static bool supports(const Rrg& rrg) {
    return unsupported_reason(rrg) == FlatCap::kNone;
  }
  /// The first cap the RRG violates, or FlatCap::kNone if supported.
  static FlatCap unsupported_reason(const Rrg& rrg);

  const Rrg& rrg() const { return rrg_; }
  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t num_edges() const { return num_edges_; }
  /// Combinational levels of the schedule: level 0 holds the registered
  /// producers (no zero-buffer in-edges), level L+1 the nodes whose
  /// longest zero-buffer chain from level 0 has length L+1.
  std::size_t num_levels() const { return num_levels_; }

  FlatState initial_state() const;

  /// K copies of the initial state, interleaved for step_batch.
  FlatBatchState initial_batch_state(std::size_t runs) const;
  /// One run's state out of a batch (differential tests).
  FlatState extract_run(const FlatBatchState& state, std::size_t run) const;

  /// Conversions to/from the reference representation (differential tests
  /// and mixed pipelines); translate between internal slot order and
  /// EdgeId order.
  SyncState to_sync(const FlatState& state) const;
  FlatState from_sync(const SyncState& state) const;

  /// Compact byte encoding for hashing / state enumeration. Identical
  /// bytes to SyncState::encode() of the corresponding state (EdgeId
  /// order, not slot order).
  std::vector<std::uint8_t> encode(const FlatState& state) const;

  /// Early nodes that will sample a guard during the next step.
  std::vector<NodeId> sampling_nodes(const FlatState& state) const;
  /// Telescopic nodes that may fire (= sample a latency) next step.
  std::vector<NodeId> latency_nodes(const FlatState& state) const;

  const std::vector<NodeId>& early_nodes() const { return early_nodes_; }
  const std::vector<NodeId>& telescopic_nodes() const {
    return telescopic_nodes_;
  }
  /// Firing order: a topological order of the zero-buffer subgraph,
  /// level-scheduled (non-decreasing combinational level).
  const std::vector<NodeId>& comb_order() const { return order_; }

  /// Advances one clock cycle in place; returns the number of firings.
  /// `choose_guard(n) -> std::size_t` and `choose_latency(n) -> bool` are
  /// arbitrary callables (functors from choosers.hpp for the zero-overhead
  /// Monte-Carlo path, lambdas for the Markov enumerator). When `fired` is
  /// non-null it must point at num_nodes() bytes and receives per-node 0/1
  /// firing flags. Never allocates.
  template <class GuardFn, class LatencyFn = NeverSlow>
  std::uint32_t step(FlatState& state, GuardFn&& choose_guard,
                     LatencyFn&& choose_latency = {},
                     std::uint8_t* fired = nullptr) const {
    // Graphs without telescopic nodes (the common case) take a
    // specialization with no busy checks and no countdown pass; drivers
    // that only need the firing total skip the per-node flag stores.
    if (telescopic_nodes_.empty()) {
      return fired == nullptr
                 ? step_impl<false, false>(state, choose_guard,
                                           choose_latency, nullptr)
                 : step_impl<false, true>(state, choose_guard, choose_latency,
                                          fired);
    }
    return fired == nullptr
               ? step_impl<true, false>(state, choose_guard, choose_latency,
                                        nullptr)
               : step_impl<true, true>(state, choose_guard, choose_latency,
                                       fired);
  }

  /// Advances one clock cycle of K interleaved runs in place and adds
  /// each run's firing count to totals[0..K). `choose_guard(n, run)` and
  /// `choose_latency(n, run)` must draw from run-private streams.
  /// K is the lane width (any of the driver's widths -- 4, 8, 16 -- or a
  /// remainder width); lanes are bit-exactly solo runs for every width.
  /// Telescopic graphs are supported: each lane carries its own busy
  /// countdown and withheld-output release, exactly mirroring the solo
  /// path run by run (the differential tests pin this down). As with the
  /// solo step, the common non-telescopic case compiles to a
  /// specialization with no busy checks and no countdown pass.
  template <std::size_t K, class GuardFn, class LatencyFn = NeverSlow>
  void step_batch(FlatBatchState& state, GuardFn&& choose_guard,
                  std::uint64_t* totals, LatencyFn&& choose_latency = {}) const {
    ELRR_HOT_ASSERT(state.runs == K, "batch shape mismatch");
    if (telescopic_nodes_.empty()) {
      step_batch_impl<K, false>(state, choose_guard, choose_latency, totals);
    } else {
      step_batch_impl<K, true>(state, choose_guard, choose_latency, totals);
    }
  }

 private:
  template <std::size_t K, bool kTelescopic, class GuardFn, class LatencyFn>
  void step_batch_impl(FlatBatchState& state, GuardFn&& choose_guard,
                       LatencyFn&& choose_latency,
                       std::uint64_t* totals) const {
    std::int32_t* const __restrict__ tokens = state.tokens.data();
    std::uint64_t* const __restrict__ window = state.window.data();
    std::int8_t* const __restrict__ pending = state.pending_guard.data();
    std::uint8_t* const __restrict__ busy = state.busy.data();
    const EdgeId* const __restrict__ out_csr = out_csr_.data();
    const std::uint64_t* const __restrict__ inject_bit = inject_bit_.data();

    // Same invariants as the solo path, checked in debug builds only.
    // The emit helpers take the per-lane 0/1 mask explicitly so the
    // telescopic release pass below can reuse them for withheld outputs.
    const auto emit_comb = [&](std::size_t s, const std::int32_t* mask) {
      std::int32_t* const t = tokens + s * K;
      for (std::size_t r = 0; r < K; ++r) {
        t[r] += mask[r];
        ELRR_HOT_ASSERT(t[r] < kTokenQueueCap,
                        "unbounded token accumulation: is the RRG "
                        "strongly connected?");
      }
    };
    const auto emit_ring = [&](std::size_t s, const std::int32_t* mask) {
      const std::uint64_t bit = inject_bit[s];
      std::uint64_t* const w = window + s * K;
      for (std::size_t r = 0; r < K; ++r) {
        ELRR_HOT_ASSERT(mask[r] == 0 || (w[r] & bit) == 0,
                        "double injection into EB chain");
        w[r] |= bit & (0 - static_cast<std::uint64_t>(mask[r]));
      }
    };
    const auto emit_masked = [&](const NodeProg& p, const std::int32_t* mask) {
      if (p.out_comb + p.out_ring == 1) {  // inline slot id
        const auto s = static_cast<std::size_t>(p.out_begin);
        if ((p.flags & NodeProg::kOut1Ring) == 0) {
          emit_comb(s, mask);
        } else {
          emit_ring(s, mask);
        }
        return;
      }
      const EdgeId* out = out_csr + p.out_begin;
      std::uint32_t j = 0;
      for (; j < p.out_comb; ++j) emit_comb(out[j], mask);
      for (; j < static_cast<std::uint32_t>(p.out_comb + p.out_ring); ++j) {
        emit_ring(out[j], mask);
      }
    };

    for (const NodeProg& p : prog_) {
      std::int32_t fire[K];
      // A lane whose node is mid slow telescopic operation does nothing
      // this cycle: no guard draw, no token consumption, no firing --
      // the per-lane analogue of the solo path's busy skip.
      std::int32_t avail[K];
      if constexpr (kTelescopic) {
        const std::uint8_t* const bz =
            busy + static_cast<std::size_t>(p.node) * K;
        for (std::size_t r = 0; r < K; ++r) {
          avail[r] = static_cast<std::int32_t>(bz[r] == 0);
        }
      }
      // The node's in-edges are one contiguous slot run: its whole input
      // block is the K * in_count lanes starting at in_begin * K.
      std::int32_t* const __restrict__ in =
          tokens + static_cast<std::size_t>(p.in_begin) * K;
      if ((p.flags & NodeProg::kEarly) == 0) {
        if (p.in_count == 1) {  // the most common shape: a chain node
          for (std::size_t r = 0; r < K; ++r) {
            fire[r] = static_cast<std::int32_t>(in[r] > 0);
            if constexpr (kTelescopic) fire[r] &= avail[r];
            in[r] -= fire[r];
          }
        } else {
          for (std::size_t r = 0; r < K; ++r) {
            fire[r] = kTelescopic ? avail[r] : 1;
          }
          for (std::uint32_t i = 0; i < p.in_count; ++i) {
            const std::int32_t* const t = in + i * K;
            for (std::size_t r = 0; r < K; ++r) {
              fire[r] &= static_cast<std::int32_t>(t[r] > 0);
            }
          }
          for (std::uint32_t i = 0; i < p.in_count; ++i) {
            std::int32_t* const t = in + i * K;
            for (std::size_t r = 0; r < K; ++r) t[r] -= fire[r];
          }
        }
      } else {
        std::int8_t* const pg = pending + static_cast<std::size_t>(p.node) * K;
        for (std::size_t r = 0; r < K; ++r) {
          if constexpr (kTelescopic) {
            if (avail[r] == 0) {
              fire[r] = 0;
              continue;
            }
          }
          std::int8_t guard = pg[r];
          if (guard == kNoGuard) {
            const std::size_t pos = choose_guard(p.node, r);
            ELRR_HOT_ASSERT(pos < p.in_count, "guard chooser out of range");
            guard = static_cast<std::int8_t>(pos);
          }
          const auto gpos = static_cast<std::uint32_t>(guard);
          fire[r] = static_cast<std::int32_t>(in[gpos * K + r] > 0);
          pg[r] = fire[r] ? kNoGuard : guard;
        }
        for (std::uint32_t i = 0; i < p.in_count; ++i) {
          std::int32_t* const t = in + i * K;
          for (std::size_t r = 0; r < K; ++r) t[r] -= fire[r];
        }
      }

      for (std::size_t r = 0; r < K; ++r) {
        totals[r] += static_cast<std::uint64_t>(fire[r]);
      }

      if constexpr (kTelescopic) {
        // A slow draw makes the lane busy and withholds its outputs:
        // clear the lane's emit mask (the firing itself already counted).
        if (p.slow_countdown != 0) {
          std::uint8_t* const bz = busy + static_cast<std::size_t>(p.node) * K;
          for (std::size_t r = 0; r < K; ++r) {
            if (fire[r] != 0 && choose_latency(p.node, r)) {
              bz[r] = p.slow_countdown;
              fire[r] = 0;
            }
          }
        }
      }
      emit_masked(p, fire);
    }

    for (const EdgeId s : buffered_slots_) {
      std::uint64_t* const w = window + static_cast<std::size_t>(s) * K;
      std::int32_t* const t = tokens + static_cast<std::size_t>(s) * K;
      for (std::size_t r = 0; r < K; ++r) {
        t[r] += static_cast<std::int32_t>(w[r] & 1);
        w[r] >>= 1;
      }
    }
    if constexpr (kTelescopic) {
      // Per-lane slow countdowns; release the withheld outputs when a
      // lane's countdown hits 1 (after the shift, exactly like the solo
      // path, so the added latency is slow_extra on every lane).
      for (const std::uint32_t pi : telescopic_prog_) {
        const NodeProg& p = prog_[pi];
        std::uint8_t* const bz = busy + static_cast<std::size_t>(p.node) * K;
        std::int32_t release[K];
        std::int32_t any = 0;
        for (std::size_t r = 0; r < K; ++r) {
          release[r] = 0;
          if (bz[r] != 0 && --bz[r] == 1) {
            release[r] = 1;
            any = 1;
          }
        }
        if (any != 0) emit_masked(p, release);
      }
    }
  }

  template <bool kTelescopic, bool kFired, class GuardFn, class LatencyFn>
  std::uint32_t step_impl(FlatState& state, GuardFn&& choose_guard,
                          LatencyFn&& choose_latency,
                          std::uint8_t* fired) const {
    // __restrict__: the state arrays, CSR arrays and prog records never
    // alias (distinct allocations); without it, every token store forces
    // the compiler to reload the metadata it could have kept in registers
    // (signed/unsigned int arrays may alias under TBAA).
    std::int32_t* const __restrict__ tokens = state.tokens.data();
    std::uint64_t* const __restrict__ window = state.window.data();
    std::int8_t* const __restrict__ pending = state.pending_guard.data();
    std::uint8_t* const __restrict__ busy = state.busy.data();
    const EdgeId* const __restrict__ out_csr = out_csr_.data();
    const std::uint64_t* const __restrict__ inject_bit = inject_bit_.data();
    std::uint32_t total_firings = 0;

    if constexpr (kFired) std::fill(fired, fired + num_nodes_, 0);

    // Firing decisions are stochastic, so data-dependent branches in the
    // per-edge loops mispredict roughly at the throughput's entropy rate
    // -- on token-level workloads that costs more than the arithmetic.
    // Every token movement below is therefore a masked, unconditional
    // +-fire on the merged counter; the only data-dependent branches left
    // are the ones the semantics require (guard satisfaction, telescopic
    // busy).

    /// Release `fire` (0/1) tokens on every output of p: straight onto
    /// the counter for combinational edges (consumable this very cycle),
    /// into the bit-ring otherwise. Degree-1 nodes carry their single
    /// slot id inline in the prog record (no CSR indirection); the
    /// comb-first slice split means no per-edge kind lookup either.
    const auto emit_masked = [&](const NodeProg& p, std::int32_t fire) {
      const std::uint64_t mask = 0 - static_cast<std::uint64_t>(fire);
      if (p.out_comb + p.out_ring == 1) {
        const auto s = static_cast<EdgeId>(p.out_begin);  // inline slot id
        if ((p.flags & NodeProg::kOut1Ring) == 0) {
          tokens[s] += fire;
          ELRR_HOT_ASSERT(tokens[s] < kTokenQueueCap,
                          "unbounded token accumulation: is the RRG "
                          "strongly connected?");
        } else {
          ELRR_HOT_ASSERT(fire == 0 || (window[s] & inject_bit[s]) == 0,
                          "double injection into EB chain");
          window[s] |= inject_bit[s] & mask;
        }
        return;
      }
      const EdgeId* out = out_csr + p.out_begin;
      std::uint32_t j = 0;
      for (; j < p.out_comb; ++j) {
        tokens[out[j]] += fire;
        ELRR_HOT_ASSERT(tokens[out[j]] < kTokenQueueCap,
                        "unbounded token accumulation: is the RRG strongly "
                        "connected?");
      }
      for (; j < static_cast<std::uint32_t>(p.out_comb + p.out_ring); ++j) {
        const EdgeId s = out[j];
        ELRR_HOT_ASSERT(fire == 0 || (window[s] & inject_bit[s]) == 0,
                        "double injection into EB chain");
        window[s] |= inject_bit[s] & mask;
      }
    };

    for (const NodeProg& p : prog_) {
      const NodeId n = p.node;
      if constexpr (kTelescopic) {
        if (busy[n] > 0) continue;  // mid slow telescopic operation
      }
      // Contiguous input slots: the node's whole input block starts at
      // in_begin, one counter per in-edge, in in_edges(n) order (guard
      // positions index straight into it).
      std::int32_t* const __restrict__ in = tokens + p.in_begin;
      std::int32_t fire;
      if ((p.flags & NodeProg::kEarly) == 0) {
        // Simple join: fires iff every input has a ready token.
        if (p.in_count == 1) {  // the most common shape: a chain node
          fire = static_cast<std::int32_t>(in[0] > 0);
          in[0] -= fire;
        } else {
          fire = 1;
          for (std::uint32_t i = 0; i < p.in_count; ++i) {
            fire &= static_cast<std::int32_t>(in[i] > 0);
          }
          for (std::uint32_t i = 0; i < p.in_count; ++i) in[i] -= fire;
        }
      } else {
        std::int8_t guard = pending[n];
        if (guard == kNoGuard) {
          const std::size_t pos = choose_guard(n);
          ELRR_HOT_ASSERT(pos < p.in_count, "guard chooser out of range");
          guard = static_cast<std::int8_t>(pos);
        }
        const auto gpos = static_cast<std::uint32_t>(guard);
        fire = static_cast<std::int32_t>(in[gpos] > 0);
        // A satisfied guard resets to kNoGuard (the firing completes it);
        // an unsatisfied one stays pending. Branch-free select.
        pending[n] = fire ? kNoGuard : guard;
        // An early firing decrements every input: the selected token is
        // consumed, a late token is cancelled, a missing one leaves an
        // anti-token -- all -1 on the merged counter.
        for (std::uint32_t i = 0; i < p.in_count; ++i) {
          in[i] -= fire;
          ELRR_HOT_ASSERT(in[i] > -kTokenQueueCap, "anti-token runaway");
        }
      }

      total_firings += static_cast<std::uint32_t>(fire);
      if constexpr (kFired) fired[n] = static_cast<std::uint8_t>(fire);
      if constexpr (kTelescopic) {
        if (fire != 0 && p.slow_countdown != 0 && choose_latency(n)) {
          // Busy for slow_extra further cycles; outputs withheld until
          // the countdown (decremented each end-of-cycle) reaches 1.
          busy[n] = p.slow_countdown;
          continue;
        }
      }
      emit_masked(p, fire);
    }

    // End of cycle: advance every EB chain by one stage -- deposit the
    // consumer-side bit, then shift the whole window one position. Only
    // buffered edges carry windows; combinational edges have none by
    // construction.
    for (const EdgeId s : buffered_slots_) {
      const std::uint64_t w = window[s];
      tokens[s] += static_cast<std::int32_t>(w & 1);
      window[s] = w >> 1;
    }
    if constexpr (kTelescopic) {
      // Slow telescopic countdowns; release the withheld outputs when the
      // countdown hits 1 (registered: the EB chain receives them after
      // this cycle's shift, so total added latency is exactly slow_extra).
      for (const std::uint32_t pi : telescopic_prog_) {
        const NodeProg& p = prog_[pi];
        if (busy[p.node] == 0) continue;
        if (--busy[p.node] == 1) emit_masked(p, 1);
      }
    }
    return total_firings;
  }

  /// One node's share of the step, in level-scheduled firing order: slot
  /// slices, kind flags and telescopic countdown packed into a single
  /// 16-byte record so the hot loop streams one contiguous array (two
  /// 64-bit loads per node) instead of gathering from parallel
  /// per-attribute vectors. The u8/u16 field widths cap what the flat
  /// kernel represents; supports() diverts larger graphs to the
  /// reference kernel.
  struct NodeProg {
    static constexpr std::uint8_t kEarly = 1;    ///< early-evaluation node
    static constexpr std::uint8_t kOut1Ring = 2; ///< sole out-edge is an EB chain

    /// First input slot: the node's in-edges occupy the contiguous slot
    /// run [in_begin, in_begin + in_count), in in_edges(n) order (no CSR
    /// indirection on the input side at all).
    std::uint32_t in_begin = 0;
    /// Slice start into out_csr_ -- except for out-degree-1 nodes, where
    /// the field holds the single out slot id directly.
    std::uint32_t out_begin = 0;
    std::uint16_t node = 0;  ///< index into per-node state arrays
    std::uint8_t in_count = 0;
    /// Out-degree, split: the node's out_csr_ slice holds its
    /// combinational (R = 0) edges first, then its buffered ones, so
    /// emit needs no per-edge kind lookup.
    std::uint8_t out_comb = 0;
    std::uint8_t out_ring = 0;
    std::uint8_t flags = 0;
    /// slow_extra + 1 for telescopic nodes, 0 otherwise (doubles as the
    /// is-telescopic flag on the firing path).
    std::uint8_t slow_countdown = 0;
    std::uint8_t pad_ = 0;
  };
  static_assert(sizeof(NodeProg) == 16, "keep the hot records two words");

  const Rrg& rrg_;
  EdgeId num_edges_ = 0;
  std::size_t num_nodes_ = 0;
  std::size_t num_levels_ = 0;

  std::vector<NodeProg> prog_;  ///< nodes in level-scheduled firing order
  std::vector<NodeId> order_;   ///< the same order as bare node ids
  std::vector<NodeId> early_nodes_;
  std::vector<NodeId> telescopic_nodes_;
  std::vector<std::uint32_t> telescopic_prog_;  ///< their prog_ positions

  // Slot renumbering: slot = internal edge index (consumer in-edges
  // contiguous, consumers in firing order). slot_of_edge_ / edge_of_slot_
  // translate at the API boundary only; the hot loops live in slot space.
  std::vector<EdgeId> slot_of_edge_;
  std::vector<EdgeId> edge_of_slot_;

  // Out-edge slot ids (sliced per node by NodeProg).
  std::vector<EdgeId> out_csr_;

  // Dense per-slot attributes.
  std::vector<std::uint64_t> inject_bit_;  ///< 1 << (R-1); 0 = combinational
  std::vector<std::int32_t> buffers_;
  std::vector<EdgeId> buffered_slots_;  ///< slots with R > 0, ascending
};

}  // namespace elrr::sim
