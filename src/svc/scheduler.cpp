#include "svc/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <utility>

#include "core/analysis.hpp"
#include "core/opt.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "support/bytes.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"
#include "svc/disk_cache.hpp"

namespace elrr::svc {

namespace {

/// A job that outlived its wall budget. Deliberately *not* a
/// TransientError: the deadline covers every retry attempt, so an
/// immediate re-run could only expire again -- the job fails (or, for
/// walk jobs, degrades) instead of burning retries.
class DeadlineExceeded : public Error {
 public:
  explicit DeadlineExceeded(const std::string& what) : Error(what) {}
};

/// Bounded fleet wait honoring a job deadline: polls in short slices so
/// a wedged fleet worker (see SimFleet::stuck_workers) can never hold a
/// scheduler worker past the job's wall budget. Each expired slice
/// samples the fleet's stuck-worker count against the configured
/// ELRR_STALL_THRESHOLD, folding the peak into `*stalled_peak` -- the
/// per-job stall observability JobStats::stalled_workers reports -- and
/// a deadline expiry names that same threshold in its error. Unlimited
/// deadlines take the plain blocking wait -- the happy path is
/// unchanged.
sim::SimReport wait_with_deadline(sim::SimFleet& fleet, sim::SimTicket ticket,
                                  const Deadline& deadline,
                                  double stall_threshold_s,
                                  std::size_t* stalled_peak) {
  if (deadline.unlimited()) return fleet.wait(ticket);
  for (;;) {
    const double slice =
        std::min(0.05, std::max(0.001, deadline.remaining()));
    std::optional<sim::SimReport> report = fleet.wait_for(ticket, slice);
    if (report.has_value()) return *report;
    const std::size_t stuck = fleet.stuck_workers(stall_threshold_s);
    *stalled_peak = std::max(*stalled_peak, stuck);
    if (deadline.expired()) {
      obs::count("job.deadline_expired");
      throw DeadlineExceeded(detail::concat(
          "job deadline expired after ", deadline.elapsed(),
          " s waiting on the simulation fleet (", stuck,
          " worker(s) busy past the ", stall_threshold_s,
          " s stall threshold)"));
    }
  }
}

/// Weighted round-robin credits per priority class: high is preferred
/// 4:2:1 but can never starve normal/low -- once its credits are spent
/// the dispatcher moves down, and credits refill only when every class
/// with work has none left.
constexpr unsigned kClassWeights[3] = {4, 2, 1};

using bytes::append_value;

/// Releases one fleet ticket on scope exit -- success or unwind (wait()
/// rethrows simulation failures; the ticket must not outlive the job in
/// a shared fleet). The one-ticket sibling of flow::Engine's TicketGuard.
struct TicketRelease {
  sim::SimFleet* fleet;
  sim::SimTicket ticket;
  ~TicketRelease() { fleet->release(ticket); }
};

}  // namespace

const char* to_string(JobMode mode) {
  switch (mode) {
    case JobMode::kScoreOnly: return "score";
    case JobMode::kMinCyc: return "min_cyc";
    case JobMode::kMinEffCyc: return "min_eff_cyc";
    case JobMode::kPortfolio: return "portfolio";
  }
  return "?";
}

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
    case JobState::kFailed: return "failed";
    case JobState::kRejected: return "rejected";
  }
  return "?";
}

SchedulerOptions SchedulerOptions::from_env() {
  constexpr std::uint64_t kNoCap = ~std::uint64_t{0};
  const flow::FlowOptions flow = flow::FlowOptions::from_env();
  SchedulerOptions options;
  options.sim_threads = flow.sim_threads;
  options.sim_dedup = flow.sim_dedup;
  options.sim_cache_cap = flow.sim_cache_cap;
  // 0 disables the deadline, so this one knob is non-negative where
  // ELRR_MILP_TIMEOUT and friends demand strictly positive.
  options.job_deadline_s = env::nonneg_double("ELRR_JOB_DEADLINE", 0.0);
  // The cap rejects typos: a retry budget past 1000 is a loop, not a
  // recovery policy.
  options.retry_max = static_cast<std::size_t>(
      env::u64("ELRR_RETRY_MAX", 2, 0, 1000));
  // Strictly positive: a zero threshold would count every busy worker
  // as stuck, which is noise, not observability.
  options.stall_threshold_s =
      env::positive_double("ELRR_STALL_THRESHOLD", 30.0);
  options.disk_cache_dir = env::str("ELRR_DISK_CACHE_DIR", "");
  options.disk_cache_cap = static_cast<std::size_t>(
      env::u64("ELRR_DISK_CACHE_CAP", 0, 0, kNoCap));
  // ELRR_STATS_SNAPSHOT=path:period_ms. The split is at the *last*
  // colon so a path containing colons still parses; the period is
  // validated strictly (integer ms in [10, 86400000]) like every other
  // knob -- malformed values throw, never silently disable.
  const std::string snapshot = env::str("ELRR_STATS_SNAPSHOT", "");
  if (!snapshot.empty()) {
    const std::size_t colon = snapshot.rfind(':');
    bool ok = colon != std::string::npos && colon > 0 &&
              colon + 1 < snapshot.size();
    std::uint64_t period = 0;
    for (std::size_t i = colon + 1; ok && i < snapshot.size(); ++i) {
      ok = snapshot[i] >= '0' && snapshot[i] <= '9';
      if (ok) period = period * 10 + static_cast<std::uint64_t>(
                                         snapshot[i] - '0');
      ok = ok && period <= 86'400'000;
    }
    ok = ok && period >= 10;
    if (!ok) {
      env::fail("ELRR_STATS_SNAPSHOT",
                "path:period_ms with period in [10, 86400000]",
                snapshot.c_str());
    }
    options.snapshot_path = snapshot.substr(0, colon);
    options.snapshot_period_ms = period;
  }
  return options;
}

std::string Scheduler::job_key(const JobSpec& spec) {
  // Everything that can change the *result*: the circuit's canonical
  // simulation-visible content, the node delays (the simulation never
  // reads them, so canonical_rrg_key omits them -- but tau, every MILP
  // solve and every xi depend on them), the mode, and the
  // result-affecting FlowOptions fields. Wall-clock knobs (sim_threads,
  // sim_dedup, sim_cache_cap, pipeline) are deliberately absent -- they
  // never move a number, per the engine/fleet determinism contracts.
  std::string key = sim::canonical_rrg_key(spec.rrg);
  for (NodeId n = 0; n < spec.rrg.num_nodes(); ++n) {
    append_value(key, spec.rrg.delay(n));
  }
  append_value(key, static_cast<std::uint8_t>(spec.mode));
  append_value(key, spec.min_cyc_x);
  append_value(key, spec.flow.seed);
  append_value(key, spec.flow.epsilon);
  append_value(key, spec.flow.milp_timeout_s);
  append_value(key, static_cast<std::uint64_t>(spec.flow.sim_cycles));
  append_value(key,
               static_cast<std::uint64_t>(spec.flow.max_simulated_points));
  append_value(key, static_cast<std::uint8_t>(spec.flow.polish));
  append_value(key, static_cast<std::uint8_t>(spec.flow.use_heuristic));
  append_value(key, static_cast<std::uint8_t>(spec.flow.heuristic_only));
  append_value(key, static_cast<std::int32_t>(spec.flow.exact_max_edges));
  return key;
}

Scheduler::Scheduler(const SchedulerOptions& options)
    : options_(options),
      fleet_(options.sim_threads, options.sim_dedup, options.sim_cache_cap) {
  options_.workers = std::max<std::size_t>(options_.workers, 1);
  paused_ = options_.start_paused;
  // The persistent layer must stand before any worker can complete a job
  // (workers store into it without further coordination). A misconfigured
  // directory throws here, from the constructor, like any other invalid
  // option.
  if (!options_.disk_cache_dir.empty()) {
    DiskCacheOptions cache_options;
    cache_options.dir = options_.disk_cache_dir;
    cache_options.cap_bytes = options_.disk_cache_cap;
    disk_cache_ = std::make_unique<DiskCache>(cache_options);
  }
  workers_.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this] { worker_main(); });
  }
  if (!options_.snapshot_path.empty() && options_.snapshot_period_ms > 0) {
    snapshot_thread_ = std::thread([this] { snapshot_main(); });
  }
}

Scheduler::~Scheduler() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    // Still-queued jobs are cancelled (their waiters unblock with a
    // terminal result); running jobs get a cancel request and finish at
    // their next step boundary before the join below returns.
    for (std::deque<JobId>& queue : queues_) {
      for (const JobId id : queue) {
        JobEntry& entry = *jobs_[id];
        entry.state = JobState::kCancelled;
        entry.result.id = id;
        entry.result.name = entry.spec.name;
        entry.result.mode = entry.spec.mode;
        entry.result.state = JobState::kCancelled;
        completion_order_.push_back(id);
      }
      queue.clear();
    }
    for (const std::unique_ptr<JobEntry>& entry : jobs_) {
      if (entry->state == JobState::kRunning) {
        entry->cancel_requested.store(true, std::memory_order_relaxed);
      }
    }
  }
  cv_.notify_all();
  snapshot_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  if (snapshot_thread_.joinable()) {
    snapshot_thread_.join();
    // One final snapshot after every worker has retired: the published
    // file ends showing the terminal state of every job, not whatever
    // the last periodic tick happened to catch.
    try {
      write_stats_snapshot(options_.snapshot_path);
    } catch (...) {
      // Shutdown is not the place to throw over a stats file.
    }
  }
}

JobId Scheduler::submit(JobSpec spec) {
  ELRR_REQUIRE(spec.rrg.num_nodes() > 0, "job '", spec.name,
               "': empty circuit");
  ELRR_REQUIRE(spec.min_cyc_x >= 1.0, "job '", spec.name,
               "': min_cyc_x must be >= 1");
  if (spec.name.empty()) spec.name = "job";
  const std::lock_guard<std::mutex> lock(mutex_);
  ELRR_REQUIRE(!stop_, "scheduler is shutting down");
  const JobId id = jobs_.size();
  jobs_.push_back(std::make_unique<JobEntry>());
  JobEntry& entry = *jobs_.back();
  entry.spec = std::move(spec);
  // Admission control: past the configured backlog the job is refused
  // *terminally* -- it gets a dense id and a reason (the caller can
  // resubmit later), but never a queue slot. Rejection is load-based,
  // not content-based, so it deliberately happens before any cache
  // probe: an overloaded service sheds work before spending on it.
  if (options_.max_queue_depth > 0) {
    std::size_t queued = 0;
    for (const std::deque<JobId>& queue : queues_) queued += queue.size();
    if (queued >= options_.max_queue_depth) {
      entry.state = JobState::kRejected;
      entry.result.id = id;
      entry.result.name = entry.spec.name;
      entry.result.mode = entry.spec.mode;
      entry.result.state = JobState::kRejected;
      entry.result.error = detail::concat(
          "rejected: queue depth limit reached (", queued, " queued, cap ",
          options_.max_queue_depth, ")");
      completion_order_.push_back(id);
      cv_.notify_all();
      return id;
    }
  }
  entry.submit_ns = obs::now_ns_if_armed();
  obs::rec::event("job.submit", id,
                  static_cast<std::uint64_t>(entry.spec.priority));
  queues_[static_cast<std::size_t>(entry.spec.priority)].push_back(id);
  cv_.notify_all();
  return id;
}

bool Scheduler::pick_next_locked(JobId* id) {
  for (int round = 0; round < 2; ++round) {
    bool any_work = false;
    for (std::size_t c = 0; c < 3; ++c) {
      if (queues_[c].empty()) continue;
      any_work = true;
      if (credits_[c] == 0) continue;
      --credits_[c];
      *id = queues_[c].front();
      queues_[c].pop_front();
      return true;
    }
    if (!any_work) return false;
    // Every class with work is out of credits: refill and go again --
    // the refill point is what makes the weights a *ratio*, not a strict
    // priority.
    for (std::size_t c = 0; c < 3; ++c) credits_[c] = kClassWeights[c];
  }
  return false;
}

void Scheduler::worker_main() {
  obs::set_thread_label("sched-worker");
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [&] {
      if (stop_) return true;
      if (paused_) return false;
      for (const std::deque<JobId>& queue : queues_) {
        if (!queue.empty()) return true;
      }
      return false;
    });
    if (stop_) return;
    JobId id = 0;
    if (!pick_next_locked(&id)) continue;
    JobEntry& entry = *jobs_[id];
    entry.state = JobState::kRunning;
    entry.result.id = id;
    entry.result.name = entry.spec.name;
    entry.result.mode = entry.spec.mode;
    lock.unlock();

    // Timeline: the queue wait ended the moment this worker picked the
    // job up; everything from here to the completion bookkeeping is the
    // job.run span (cache probes included -- a cache-served job shows
    // as a short run).
    const std::int64_t run_start_ns = obs::now_ns_if_armed();
    if (obs::armed() && entry.submit_ns > 0) {
      obs::record_span("job.queued", entry.submit_ns, run_start_ns, id);
    }
    obs::rec::event("job.pick", id);
    obs::rec::set_inflight("job", id);

    // Cross-job result cache: an identical job (same circuit content,
    // result-affecting options and mode) short-circuits the whole run.
    // The key is *reserved at dispatch* -- like the fleet's two-phase
    // candidate submission -- so a duplicate dispatched concurrently
    // waits for the first copy instead of re-walking; a completed twin
    // serves instantly. The key serializes the circuit (computed
    // outside the lock); lookup/reservation is one critical section.
    Stopwatch watch;
    // The canonical key feeds both cache layers; the persistent layer
    // works with the in-memory one off (and vice versa).
    const std::string key = options_.job_cache || disk_cache_ != nullptr
                                ? job_key(entry.spec)
                                : std::string();
    JobStats stats;  // local while running; merged under the final lock
    bool served_from_cache = false;
    bool cancelled_while_waiting = false;
    if (options_.job_cache && !key.empty()) {
      std::unique_lock<std::mutex> cache_lock(mutex_);
      // Ownership loop: whoever holds result_cache_[key] runs the job;
      // everyone else waits and re-checks on every wake -- the owner may
      // complete (serve from it), fail or be cancelled (exactly ONE
      // waiter takes the identity over and runs; the rest find the new
      // owner and go back to waiting -- no stampede of redundant
      // walks), or the waiter itself may be cancelled or the scheduler
      // shut down (terminate kCancelled without running).
      for (;;) {
        if (entry.cancel_requested.load(std::memory_order_relaxed) ||
            stop_) {
          entry.result.state = JobState::kCancelled;
          cancelled_while_waiting = true;
          break;
        }
        const auto [it, inserted] = result_cache_.emplace(key, id);
        if (inserted || it->second == id) break;  // we own it: run below
        // JobEntry storage is stable (unique_ptr); `it` is re-fetched
        // every iteration because concurrent emplaces may rehash.
        JobEntry& source = *jobs_[it->second];
        if (source.state == JobState::kDone && !source.result.degraded) {
          entry.result = source.result;  // terminal results are immutable
          entry.result.id = id;
          entry.result.name = entry.spec.name;
          entry.result.circuit.name = entry.spec.name;
          // The twin did none of the work: only the cache-hit marker is
          // its own. Summing sim_jobs/unique_simulations over per-job
          // records must match the work actually performed.
          stats = JobStats{};
          stats.job_cache_hit = true;
          ++job_cache_hits_;
          obs::count("job.cache_hit");
          served_from_cache = true;
          break;
        }
        if (source.state == JobState::kCancelled ||
            source.state == JobState::kFailed ||
            source.state == JobState::kDone) {
          // kDone here means *degraded*: a deadline-shaped result must
          // never be served to a twin whose own budget might be healthy.
          // Treated like a failed owner -- take the identity over and
          // run for real.
          // The owner came to nothing: take the identity over and run
          // for real (later duplicates wait on -- or reuse -- this job).
          result_cache_[key] = id;
          break;
        }
        cv_.wait(cache_lock);  // owner still running; re-check on wake
      }
    }
    // Persistent layer, probed only by the key's *owner* (an in-memory
    // hit never touches disk). A valid entry is bit-identical to the
    // run it replaces -- the payload is the byte-exact serialized result
    // of a prior completion -- so serving it publishes this job as a
    // clean kDone owner for in-memory twins too. Torn/corrupt entries
    // read as misses and the job simply runs.
    if (!served_from_cache && !cancelled_while_waiting &&
        disk_cache_ != nullptr) {
      const std::optional<std::string> payload = disk_cache_->load(key);
      std::optional<JobResult> cached;
      if (payload.has_value()) cached = deserialize_job_result(*payload);
      if (cached.has_value() && cached->mode == entry.spec.mode) {
        entry.result = std::move(*cached);
        entry.result.id = id;
        entry.result.name = entry.spec.name;
        entry.result.circuit.name = entry.spec.name;
        stats = JobStats{};
        stats.disk_cache_hit = true;
        served_from_cache = true;
      }
    }
    if (!served_from_cache && !cancelled_while_waiting) {
      run_job_robust(entry, &stats);
      // Only clean completions persist: degraded results are
      // deadline-shaped (wall-clock leaking into a content-addressed
      // key would poison healthier twins) and cancelled/failed runs
      // carry no result worth replaying.
      if (disk_cache_ != nullptr &&
          entry.result.state == JobState::kDone && !entry.result.degraded) {
        disk_cache_->store(key, serialize_job_result(entry.result));
      }
    }
    stats.wall_seconds = watch.seconds();
    obs::record_span("job.run", run_start_ns, obs::now_ns_if_armed(), id);
    obs::rec::clear_inflight();
    obs::rec::event(entry.result.state == JobState::kDone ? "job.done"
                    : entry.result.state == JobState::kCancelled
                        ? "job.cancelled"
                        : "job.failed",
                    id);

    lock.lock();
    // Live progress (candidates_walked) streamed in through the hook;
    // everything else lands here, under the lock status() reads with.
    stats.candidates_walked =
        std::max(stats.candidates_walked, entry.stats.candidates_walked);
    stats.stalled_workers =
        std::max(stats.stalled_workers, entry.stats.stalled_workers);
    if (stats.disk_cache_hit) {
      ++disk_cache_hits_;
      obs::count("job.disk_cache_hit");
    }
    total_retries_ += stats.retries;
    entry.stats = stats;
    entry.result.stats = stats;
    entry.state = entry.result.state;
    obs::count(entry.state == JobState::kDone ? "job.done"
               : entry.state == JobState::kCancelled ? "job.cancelled"
                                                     : "job.failed");
    completion_order_.push_back(id);
    cv_.notify_all();
  }
}

void Scheduler::run_job_robust(JobEntry& entry, JobStats* stats) {
  const Deadline deadline(
      entry.spec.deadline_s.value_or(options_.job_deadline_s));
  const std::size_t retry_max =
      entry.spec.retries.value_or(options_.retry_max);
  for (std::size_t attempt = 0;; ++attempt) {
    bool transient = false;
    {
      OBS_SPAN_ID("job.attempt", attempt + 1);
      run_job(entry, stats, deadline, &transient);
    }
    if (entry.result.state != JobState::kFailed) return;
    // Permanent failures (API misuse, internal bugs, deadline expiry)
    // never retry; transients (injected faults, lost workers) get the
    // bounded budget -- but only while the job's own deadline still has
    // room, since the deadline covers all attempts.
    if (!transient || attempt >= retry_max || deadline.expired()) return;
    // Bounded exponential backoff, interruptible: a cancel() or
    // scheduler shutdown must not sit out the full sleep.
    const auto backoff =
        std::chrono::milliseconds(10) * (std::uint64_t{1} << std::min<std::size_t>(attempt, 5));
    {
      OBS_SPAN("job.backoff");
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait_for(lock, backoff, [&] {
        return stop_ ||
               entry.cancel_requested.load(std::memory_order_relaxed);
      });
      if (stop_ ||
          entry.cancel_requested.load(std::memory_order_relaxed)) {
        entry.result.state = JobState::kCancelled;
        return;
      }
    }
    ++stats->retries;
    obs::count("job.retries");
    obs::rec::event("job.retry", entry.result.id,
                    static_cast<std::uint64_t>(attempt + 1));
    // Re-run from a clean slate: the failed attempt's partial numbers
    // must not bleed into the retry (the retried result is bit-identical
    // to a first-try run -- the determinism tests pin this).
    JobResult fresh;
    fresh.id = entry.result.id;
    fresh.name = entry.result.name;
    fresh.mode = entry.result.mode;
    entry.result = std::move(fresh);
  }
}

void Scheduler::run_job(JobEntry& entry, JobStats* stats,
                        const Deadline& deadline, bool* transient) {
  const JobSpec& spec = entry.spec;
  JobResult& result = entry.result;
  *transient = false;
  try {
    flow::FlowHooks hooks;
    hooks.fleet = &fleet_;
    // The cooperative cancellation predicate carries *both* stop
    // reasons: a user cancel() and the job's wall budget. Walks observe
    // it at every step boundary; which of the two fired is resolved
    // after the flow returns (deadline -> degradation ladder, cancel ->
    // kCancelled).
    hooks.cancelled = [&entry, &deadline] {
      return entry.cancel_requested.load(std::memory_order_relaxed) ||
             deadline.expired();
    };
    // Walk jobs never route through wait_with_deadline (the flow engine
    // owns its fleet waits), so the progress hook doubles as their stall
    // sampler: every step boundary probes the fleet against the
    // configured threshold and keeps the peak.
    hooks.on_progress = [this, &entry](std::size_t walked) {
      const std::size_t stuck =
          fleet_.stuck_workers(options_.stall_threshold_s);
      const std::lock_guard<std::mutex> lock(mutex_);
      entry.stats.candidates_walked = walked;
      entry.stats.stalled_workers =
          std::max(entry.stats.stalled_workers, stuck);
    };
    switch (spec.mode) {
      case JobMode::kMinEffCyc: {
        result.circuit = flow::run_flow(spec.name, spec.rrg, spec.flow, hooks);
        const bool user_cancel =
            entry.cancel_requested.load(std::memory_order_relaxed);
        if (result.circuit.cancelled && !user_cancel && deadline.expired()) {
          // Degradation ladder: the exact walk ran out of wall budget.
          // Fall back to the MILP-free heuristic flow -- deterministic,
          // orders of magnitude cheaper, and bit-identical to a direct
          // heuristic_only run of the same spec -- and flag the result
          // instead of failing the job. The scheduler never caches
          // degraded results (memory or disk).
          flow::FlowOptions degraded_flow = spec.flow;
          degraded_flow.heuristic_only = true;
          flow::FlowHooks degraded_hooks = hooks;
          degraded_hooks.cancelled = [&entry] {
            return entry.cancel_requested.load(std::memory_order_relaxed);
          };
          result.circuit = flow::run_flow(spec.name, spec.rrg,
                                          degraded_flow, degraded_hooks);
          result.degraded = true;
          result.error = detail::concat(
              "deadline expired after ", deadline.elapsed(),
              " s: degraded to the heuristic-only flow");
        }
        stats->candidates_walked = result.circuit.candidates_walked;
        stats->sim_jobs = result.circuit.sim_jobs;
        stats->unique_simulations = result.circuit.unique_simulations;
        stats->walk_seconds = result.circuit.walk_seconds;
        stats->sim_wait_seconds = result.circuit.sim_wait_seconds;
        result.tau = result.circuit.candidates.empty()
                         ? 0.0
                         : result.circuit.candidates.front().tau;
        result.theta_sim = result.circuit.candidates.empty()
                               ? 0.0
                               : result.circuit.candidates.front().theta_sim;
        result.xi_sim = result.circuit.xi_sim_min;
        result.state =
            (result.circuit.cancelled && !result.degraded) ||
                    entry.cancel_requested.load(std::memory_order_relaxed)
                ? JobState::kCancelled
                : JobState::kDone;
        break;
      }
      case JobMode::kPortfolio: {
        // Anytime portfolio: race the MILP-free heuristic against the
        // exact flow, sequentially on this one worker (the fleet below
        // is shared; a second walk thread would only fight the MILPs for
        // cores). Leg 1 -- the heuristic -- is orders of magnitude
        // cheaper and deterministic; its answer is published to
        // status() the moment it lands (anytime_*), so a caller watching
        // the job has a usable configuration long before the exact walk
        // finishes. Leg 2 -- the exact flow -- then runs under the job
        // deadline and *supersedes* the heuristic on clean completion.
        // Legs share the fleet's session cache, so any candidate both
        // produce simulates once.
        Stopwatch anytime_watch;
        flow::FlowOptions heuristic_flow = spec.flow;
        heuristic_flow.heuristic_only = true;
        flow::FlowHooks heuristic_hooks = hooks;
        // The heuristic leg ignores the deadline (like the kMinEffCyc
        // degradation ladder): it IS the fallback answer, and cutting it
        // short would leave the job with nothing. User cancels still
        // stop it.
        heuristic_hooks.cancelled = [&entry] {
          return entry.cancel_requested.load(std::memory_order_relaxed);
        };
        heuristic_hooks.on_progress = nullptr;  // the exact leg owns
                                                // candidates_walked
        const flow::CircuitResult anytime = flow::run_flow(
            spec.name, spec.rrg, heuristic_flow, heuristic_hooks);
        stats->anytime_ready = !anytime.cancelled;
        stats->anytime_xi = anytime.xi_sim_min;
        stats->anytime_seconds = anytime_watch.seconds();
        {
          // Publish the anytime answer live: status() reads entry.stats
          // under this mutex while the job is still running.
          const std::lock_guard<std::mutex> lock(mutex_);
          entry.stats.anytime_ready = stats->anytime_ready;
          entry.stats.anytime_xi = stats->anytime_xi;
          entry.stats.anytime_seconds = stats->anytime_seconds;
        }
        if (entry.cancel_requested.load(std::memory_order_relaxed)) {
          result.circuit = anytime;
          stats->sim_jobs = anytime.sim_jobs;
          stats->unique_simulations = anytime.unique_simulations;
          stats->walk_seconds = anytime.walk_seconds;
          stats->sim_wait_seconds = anytime.sim_wait_seconds;
          result.state = JobState::kCancelled;
          break;
        }
        flow::CircuitResult exact =
            flow::run_flow(spec.name, spec.rrg, spec.flow, hooks);
        const bool user_cancel =
            entry.cancel_requested.load(std::memory_order_relaxed);
        const bool exact_timed_out =
            exact.cancelled && !user_cancel && deadline.expired();
        stats->candidates_walked =
            anytime.candidates_walked + exact.candidates_walked;
        stats->sim_jobs = anytime.sim_jobs + exact.sim_jobs;
        stats->unique_simulations =
            anytime.unique_simulations + exact.unique_simulations;
        stats->walk_seconds = anytime.walk_seconds + exact.walk_seconds;
        stats->sim_wait_seconds =
            anytime.sim_wait_seconds + exact.sim_wait_seconds;
        if (exact_timed_out) {
          // The exact leg ran out of wall budget: the job still
          // completes with the heuristic's answer, flagged degraded --
          // and degraded results are never cached (memory or disk), so
          // the caches only ever hold results the exact leg produced.
          result.circuit = anytime;
          result.degraded = true;
          result.error = detail::concat(
              "deadline expired after ", deadline.elapsed(),
              " s into the exact leg: kept the anytime heuristic answer");
        } else {
          result.circuit = std::move(exact);
        }
        result.tau = result.circuit.candidates.empty()
                         ? 0.0
                         : result.circuit.candidates.front().tau;
        result.theta_sim = result.circuit.candidates.empty()
                               ? 0.0
                               : result.circuit.candidates.front().theta_sim;
        result.xi_sim = result.circuit.xi_sim_min;
        result.state =
            (result.circuit.cancelled && !result.degraded) || user_cancel
                ? JobState::kCancelled
                : JobState::kDone;
        break;
      }
      case JobMode::kScoreOnly: {
        const sim::SimOptions sopt = flow::scoring_options(spec.flow);
        Stopwatch sim_watch;
        const sim::SimTicket ticket =
            fleet_.submit_async(Rrg(spec.rrg), sopt);
        // Released on unwind too: wait() rethrows simulation failures,
        // and a leaked ticket would pin its job in the shared fleet for
        // the scheduler's lifetime.
        const TicketRelease release{&fleet_, ticket};
        const sim::SimReport report =
            wait_with_deadline(fleet_, ticket, deadline,
                               options_.stall_threshold_s,
                               &stats->stalled_workers);
        stats->sim_wait_seconds = sim_watch.seconds();
        stats->sim_jobs = 1;
        stats->unique_simulations = ticket.fresh ? 1 : 0;
        result.tau = cycle_time(spec.rrg).tau;
        result.theta_sim = report.theta;
        result.xi_sim = effective_cycle_time(result.tau, report.theta);
        // Non-walk jobs have no step boundary: the primitive runs to
        // completion, but a cancel() that returned true must still be
        // observable -- the job terminates kCancelled (result fields
        // stay populated for the curious).
        result.state = entry.cancel_requested.load(std::memory_order_relaxed)
                           ? JobState::kCancelled
                           : JobState::kDone;
        break;
      }
      case JobMode::kMinCyc: {
        OptOptions opt;
        opt.epsilon = spec.flow.epsilon;
        opt.milp.time_limit_s = spec.flow.milp_timeout_s;
        Stopwatch walk_watch;
        const RcSolveResult solve = min_cyc(spec.rrg, spec.min_cyc_x, opt);
        stats->walk_seconds = walk_watch.seconds();
        ELRR_REQUIRE(solve.feasible, "MIN_CYC(", spec.min_cyc_x,
                     ") infeasible for '", spec.name, "'");
        const Rrg tuned = apply_config(spec.rrg, solve.config);
        const sim::SimOptions sopt = flow::scoring_options(spec.flow);
        Stopwatch sim_watch;
        const sim::SimTicket ticket = fleet_.submit_async(Rrg(tuned), sopt);
        const TicketRelease release{&fleet_, ticket};
        const sim::SimReport report =
            wait_with_deadline(fleet_, ticket, deadline,
                               options_.stall_threshold_s,
                               &stats->stalled_workers);
        stats->sim_wait_seconds = sim_watch.seconds();
        stats->sim_jobs = 1;
        stats->unique_simulations = ticket.fresh ? 1 : 0;
        result.tau = cycle_time(tuned).tau;
        result.theta_sim = report.theta;
        result.xi_sim = effective_cycle_time(result.tau, report.theta);
        result.state = entry.cancel_requested.load(std::memory_order_relaxed)
                           ? JobState::kCancelled
                           : JobState::kDone;
        break;
      }
    }
  } catch (const TransientError& e) {
    // The retryable class: injected faults, lost workers, torn IO. The
    // attempt loop in run_job_robust re-runs these up to the budget.
    result.state = JobState::kFailed;
    result.error = e.what();
    *transient = true;
  } catch (const std::exception& e) {
    // A failed job reports, never wedges: waiters get a terminal result
    // with the error text and the worker moves on. The flow releases its
    // fleet tickets on unwind (flow::Engine's TicketGuard); any still
    // in-flight simulations finish harmlessly into the session cache,
    // so the shared fleet keeps serving the next job. Permanent by
    // default -- only TransientError earns a retry.
    result.state = JobState::kFailed;
    result.error = e.what();
  }
}

JobSnapshot Scheduler::status(JobId id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ELRR_REQUIRE(id < jobs_.size(), "unknown job id ", id);
  const JobEntry& entry = *jobs_[id];
  return JobSnapshot{entry.state, entry.stats};
}

JobResult Scheduler::wait(JobId id) {
  std::unique_lock<std::mutex> lock(mutex_);
  ELRR_REQUIRE(id < jobs_.size(), "unknown job id ", id);
  JobEntry& entry = *jobs_[id];
  cv_.wait(lock, [&] {
    return entry.state == JobState::kDone ||
           entry.state == JobState::kCancelled ||
           entry.state == JobState::kFailed ||
           entry.state == JobState::kRejected;
  });
  return entry.result;
}

std::vector<JobResult> Scheduler::wait_all() {
  std::size_t count = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    count = jobs_.size();
  }
  std::vector<JobResult> results;
  results.reserve(count);
  for (JobId id = 0; id < count; ++id) results.push_back(wait(id));
  return results;
}

bool Scheduler::cancel(JobId id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ELRR_REQUIRE(id < jobs_.size(), "unknown job id ", id);
  JobEntry& entry = *jobs_[id];
  if (entry.state == JobState::kQueued) {
    for (std::deque<JobId>& queue : queues_) {
      const auto it = std::find(queue.begin(), queue.end(), id);
      if (it != queue.end()) {
        queue.erase(it);
        break;
      }
    }
    entry.state = JobState::kCancelled;
    entry.result.id = id;
    entry.result.name = entry.spec.name;
    entry.result.mode = entry.spec.mode;
    entry.result.state = JobState::kCancelled;
    completion_order_.push_back(id);
    cv_.notify_all();
    return true;
  }
  if (entry.state == JobState::kRunning) {
    entry.cancel_requested.store(true, std::memory_order_relaxed);
    // A running twin may be parked in the result-cache ownership loop
    // waiting on its duplicate: wake it so the cancellation is observed
    // now, not at the twin's completion.
    cv_.notify_all();
    return true;
  }
  return false;
}

void Scheduler::resume() {
  const std::lock_guard<std::mutex> lock(mutex_);
  paused_ = false;
  cv_.notify_all();
}

void Scheduler::pause() {
  const std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

SchedulerStats Scheduler::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  SchedulerStats stats;
  stats.submitted = jobs_.size();
  stats.job_cache_hits = job_cache_hits_;
  stats.disk_cache_hits = disk_cache_hits_;
  stats.retries = total_retries_;
  for (const std::unique_ptr<JobEntry>& entry : jobs_) {
    switch (entry->state) {
      case JobState::kQueued: ++stats.queued; break;
      case JobState::kRunning: ++stats.running; break;
      case JobState::kDone:
        ++stats.completed;
        if (entry->result.degraded) ++stats.degraded;
        break;
      case JobState::kCancelled: ++stats.cancelled; break;
      case JobState::kFailed: ++stats.failed; break;
      case JobState::kRejected: ++stats.rejected; break;
    }
  }
  return stats;
}

std::vector<JobId> Scheduler::completion_order() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return completion_order_;
}

std::string Scheduler::stats_json() const {
  const SchedulerStats stats = this->stats();
  const sim::SimCacheStats cache = fleet_.cache_stats();
  const sim::ProcFleetStats proc = fleet_.proc_stats();
  // The MILP session stats summed over every *terminal* job (a running
  // job's result is still being written by its worker). At batch end
  // this equals the sum over wait_all()'s results, which is what keeps
  // the CLI summary byte-identical through this refactor.
  lp::SessionStats milp;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const std::unique_ptr<JobEntry>& entry : jobs_) {
      if (entry->state == JobState::kQueued ||
          entry->state == JobState::kRunning) {
        continue;
      }
      const lp::SessionStats& m = entry->result.circuit.milp;
      milp.solves += m.solves;
      milp.warm_attempts += m.warm_attempts;
      milp.warm_roots += m.warm_roots;
      milp.warm_seeds += m.warm_seeds;
      milp.warm_fallbacks += m.warm_fallbacks;
      milp.cold_solves += m.cold_solves;
      milp.presolves += m.presolves;
      milp.nodes += m.nodes;
      milp.lp_iterations += m.lp_iterations;
      milp.solve_seconds += m.solve_seconds;
    }
  }
  std::string out;
  char buf[768];
  std::snprintf(buf, sizeof(buf),
                "{\"scheduler\": {\"submitted\": %zu, "
                "\"completed\": %zu, \"failed\": %zu, \"rejected\": %zu, "
                "\"degraded\": %zu, \"cancelled\": %zu, \"retries\": %llu, "
                "\"job_cache_hits\": %llu, \"disk_cache_hits\": %llu}",
                stats.submitted, stats.completed, stats.failed,
                stats.rejected, stats.degraded, stats.cancelled,
                static_cast<unsigned long long>(stats.retries),
                static_cast<unsigned long long>(stats.job_cache_hits),
                static_cast<unsigned long long>(stats.disk_cache_hits));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                ", \"fleet_cache\": {\"hits\": %llu, \"misses\": %llu, "
                "\"entries\": %zu, \"bytes\": %zu, \"capacity_bytes\": %zu, "
                "\"evictions\": %llu}",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses), cache.entries,
                cache.bytes, cache.capacity_bytes,
                static_cast<unsigned long long>(cache.evictions));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                ", \"proc\": {\"workers\": %zu, \"spawns\": %llu, "
                "\"crashes\": %llu, \"respawns\": %llu, "
                "\"redispatches\": %llu, \"postmortems\": %llu}",
                fleet_.proc_workers(),
                static_cast<unsigned long long>(proc.spawns),
                static_cast<unsigned long long>(proc.crashes),
                static_cast<unsigned long long>(proc.respawns),
                static_cast<unsigned long long>(proc.redispatches),
                static_cast<unsigned long long>(proc.postmortems));
  out += buf;
  if (disk_cache_ != nullptr) {
    const DiskCacheStats disk = disk_cache_->stats();
    std::snprintf(buf, sizeof(buf),
                  ", \"disk_cache\": {\"entries\": %zu, \"bytes\": %zu, "
                  "\"hits\": %llu, \"misses\": %llu, \"corrupt\": %llu, "
                  "\"stores\": %llu, \"store_errors\": %llu, "
                  "\"evictions\": %llu}",
                  disk.entries, disk.bytes,
                  static_cast<unsigned long long>(disk.hits),
                  static_cast<unsigned long long>(disk.misses),
                  static_cast<unsigned long long>(disk.corrupt),
                  static_cast<unsigned long long>(disk.stores),
                  static_cast<unsigned long long>(disk.store_errors),
                  static_cast<unsigned long long>(disk.evictions));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                ", \"milp\": {\"solves\": %lld, \"warm_attempts\": %lld, "
                "\"warm_roots\": %lld, \"warm_fallbacks\": %lld, "
                "\"cold_solves\": %lld, \"presolves\": %lld, "
                "\"nodes\": %lld, \"lp_iterations\": %lld, "
                "\"solve_seconds\": %.4f}}",
                static_cast<long long>(milp.solves),
                static_cast<long long>(milp.warm_attempts),
                static_cast<long long>(milp.warm_roots),
                static_cast<long long>(milp.warm_fallbacks),
                static_cast<long long>(milp.cold_solves),
                static_cast<long long>(milp.presolves),
                static_cast<long long>(milp.nodes),
                static_cast<long long>(milp.lp_iterations),
                milp.solve_seconds);
  out += buf;
  return out;
}

void Scheduler::write_stats_snapshot(const std::string& path) const {
  const SchedulerStats stats = this->stats();
  std::string doc;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "{\"snapshot\": true, \"uptime_s\": %.3f",
                uptime_.seconds());
  doc += buf;
  std::snprintf(buf, sizeof(buf),
                ", \"queued\": %zu, \"running\": %zu, \"workers\": %zu",
                stats.queued, stats.running, options_.workers);
  doc += buf;
  std::snprintf(buf, sizeof(buf),
                ", \"fleet\": {\"pool\": %zu, \"busy\": %zu, "
                "\"proc_workers\": %zu}",
                fleet_.pool_size(), fleet_.busy_workers(),
                fleet_.proc_workers());
  doc += buf;
  doc += ", \"stats\": ";
  doc += stats_json();
  // The obs body rides along whenever tracing is armed: `elrr top`
  // renders its per-phase percentiles next to the queue/fleet gauges.
  doc += ", \"obs\": {";
  doc += obs::summary_json();
  doc += "}}\n";

  const std::string tmp = path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "w");
  if (out == nullptr) {
    throw Error(detail::concat(
        "scheduler: cannot open stats snapshot for write: ", tmp));
  }
  std::fputs(doc.c_str(), out);
  const bool write_ok = std::ferror(out) == 0;
  const bool close_ok = std::fclose(out) == 0;
  if (!write_ok || !close_ok) {
    std::remove(tmp.c_str());
    throw Error(
        detail::concat("scheduler: short write to stats snapshot: ", tmp));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error(detail::concat(
        "scheduler: cannot move stats snapshot into place: ", path));
  }
}

void Scheduler::snapshot_main() {
  obs::set_thread_label("sched-snapshot");
  const auto period = std::chrono::milliseconds(options_.snapshot_period_ms);
  bool warned = false;
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    snapshot_cv_.wait_for(lock, period, [&] { return stop_; });
    if (stop_) break;  // the destructor writes the terminal snapshot
    lock.unlock();
    try {
      write_stats_snapshot(options_.snapshot_path);
    } catch (const std::exception& e) {
      // A broken snapshot path must not kill the service it observes;
      // one warning names it and the publisher keeps trying.
      if (!warned) {
        std::fprintf(stderr, "elrr scheduler: stats snapshot failed: %s\n",
                     e.what());
        warned = true;
      }
    }
    lock.lock();
  }
}

}  // namespace elrr::svc
