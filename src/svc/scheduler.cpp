#include "svc/scheduler.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "core/analysis.hpp"
#include "core/opt.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace elrr::svc {

namespace {

/// Weighted round-robin credits per priority class: high is preferred
/// 4:2:1 but can never starve normal/low -- once its credits are spent
/// the dispatcher moves down, and credits refill only when every class
/// with work has none left.
constexpr unsigned kClassWeights[3] = {4, 2, 1};

using bytes::append_value;

/// Releases one fleet ticket on scope exit -- success or unwind (wait()
/// rethrows simulation failures; the ticket must not outlive the job in
/// a shared fleet). The one-ticket sibling of flow::Engine's TicketGuard.
struct TicketRelease {
  sim::SimFleet* fleet;
  sim::SimTicket ticket;
  ~TicketRelease() { fleet->release(ticket); }
};

}  // namespace

const char* to_string(JobMode mode) {
  switch (mode) {
    case JobMode::kScoreOnly: return "score";
    case JobMode::kMinCyc: return "min_cyc";
    case JobMode::kMinEffCyc: return "min_eff_cyc";
  }
  return "?";
}

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
    case JobState::kFailed: return "failed";
  }
  return "?";
}

std::string Scheduler::job_key(const JobSpec& spec) {
  // Everything that can change the *result*: the circuit's canonical
  // simulation-visible content, the node delays (the simulation never
  // reads them, so canonical_rrg_key omits them -- but tau, every MILP
  // solve and every xi depend on them), the mode, and the
  // result-affecting FlowOptions fields. Wall-clock knobs (sim_threads,
  // sim_dedup, sim_cache_cap, pipeline) are deliberately absent -- they
  // never move a number, per the engine/fleet determinism contracts.
  std::string key = sim::canonical_rrg_key(spec.rrg);
  for (NodeId n = 0; n < spec.rrg.num_nodes(); ++n) {
    append_value(key, spec.rrg.delay(n));
  }
  append_value(key, static_cast<std::uint8_t>(spec.mode));
  append_value(key, spec.min_cyc_x);
  append_value(key, spec.flow.seed);
  append_value(key, spec.flow.epsilon);
  append_value(key, spec.flow.milp_timeout_s);
  append_value(key, static_cast<std::uint64_t>(spec.flow.sim_cycles));
  append_value(key,
               static_cast<std::uint64_t>(spec.flow.max_simulated_points));
  append_value(key, static_cast<std::uint8_t>(spec.flow.polish));
  append_value(key, static_cast<std::uint8_t>(spec.flow.use_heuristic));
  append_value(key, static_cast<std::uint8_t>(spec.flow.heuristic_only));
  append_value(key, static_cast<std::int32_t>(spec.flow.exact_max_edges));
  return key;
}

Scheduler::Scheduler(const SchedulerOptions& options)
    : options_(options),
      fleet_(options.sim_threads, options.sim_dedup, options.sim_cache_cap) {
  options_.workers = std::max<std::size_t>(options_.workers, 1);
  paused_ = options_.start_paused;
  workers_.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

Scheduler::~Scheduler() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    // Still-queued jobs are cancelled (their waiters unblock with a
    // terminal result); running jobs get a cancel request and finish at
    // their next step boundary before the join below returns.
    for (std::deque<JobId>& queue : queues_) {
      for (const JobId id : queue) {
        JobEntry& entry = *jobs_[id];
        entry.state = JobState::kCancelled;
        entry.result.id = id;
        entry.result.name = entry.spec.name;
        entry.result.mode = entry.spec.mode;
        entry.result.state = JobState::kCancelled;
        completion_order_.push_back(id);
      }
      queue.clear();
    }
    for (const std::unique_ptr<JobEntry>& entry : jobs_) {
      if (entry->state == JobState::kRunning) {
        entry->cancel_requested.store(true, std::memory_order_relaxed);
      }
    }
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

JobId Scheduler::submit(JobSpec spec) {
  ELRR_REQUIRE(spec.rrg.num_nodes() > 0, "job '", spec.name,
               "': empty circuit");
  ELRR_REQUIRE(spec.min_cyc_x >= 1.0, "job '", spec.name,
               "': min_cyc_x must be >= 1");
  if (spec.name.empty()) spec.name = "job";
  const std::lock_guard<std::mutex> lock(mutex_);
  ELRR_REQUIRE(!stop_, "scheduler is shutting down");
  const JobId id = jobs_.size();
  jobs_.push_back(std::make_unique<JobEntry>());
  jobs_.back()->spec = std::move(spec);
  queues_[static_cast<std::size_t>(jobs_.back()->spec.priority)].push_back(id);
  cv_.notify_all();
  return id;
}

bool Scheduler::pick_next_locked(JobId* id) {
  for (int round = 0; round < 2; ++round) {
    bool any_work = false;
    for (std::size_t c = 0; c < 3; ++c) {
      if (queues_[c].empty()) continue;
      any_work = true;
      if (credits_[c] == 0) continue;
      --credits_[c];
      *id = queues_[c].front();
      queues_[c].pop_front();
      return true;
    }
    if (!any_work) return false;
    // Every class with work is out of credits: refill and go again --
    // the refill point is what makes the weights a *ratio*, not a strict
    // priority.
    for (std::size_t c = 0; c < 3; ++c) credits_[c] = kClassWeights[c];
  }
  return false;
}

void Scheduler::worker_main() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [&] {
      if (stop_) return true;
      if (paused_) return false;
      for (const std::deque<JobId>& queue : queues_) {
        if (!queue.empty()) return true;
      }
      return false;
    });
    if (stop_) return;
    JobId id = 0;
    if (!pick_next_locked(&id)) continue;
    JobEntry& entry = *jobs_[id];
    entry.state = JobState::kRunning;
    entry.result.id = id;
    entry.result.name = entry.spec.name;
    entry.result.mode = entry.spec.mode;
    lock.unlock();

    // Cross-job result cache: an identical job (same circuit content,
    // result-affecting options and mode) short-circuits the whole run.
    // The key is *reserved at dispatch* -- like the fleet's two-phase
    // candidate submission -- so a duplicate dispatched concurrently
    // waits for the first copy instead of re-walking; a completed twin
    // serves instantly. The key serializes the circuit (computed
    // outside the lock); lookup/reservation is one critical section.
    Stopwatch watch;
    const std::string key =
        options_.job_cache ? job_key(entry.spec) : std::string();
    JobStats stats;  // local while running; merged under the final lock
    bool served_from_cache = false;
    bool cancelled_while_waiting = false;
    if (!key.empty()) {
      std::unique_lock<std::mutex> cache_lock(mutex_);
      // Ownership loop: whoever holds result_cache_[key] runs the job;
      // everyone else waits and re-checks on every wake -- the owner may
      // complete (serve from it), fail or be cancelled (exactly ONE
      // waiter takes the identity over and runs; the rest find the new
      // owner and go back to waiting -- no stampede of redundant
      // walks), or the waiter itself may be cancelled or the scheduler
      // shut down (terminate kCancelled without running).
      for (;;) {
        if (entry.cancel_requested.load(std::memory_order_relaxed) ||
            stop_) {
          entry.result.state = JobState::kCancelled;
          cancelled_while_waiting = true;
          break;
        }
        const auto [it, inserted] = result_cache_.emplace(key, id);
        if (inserted || it->second == id) break;  // we own it: run below
        // JobEntry storage is stable (unique_ptr); `it` is re-fetched
        // every iteration because concurrent emplaces may rehash.
        JobEntry& source = *jobs_[it->second];
        if (source.state == JobState::kDone) {
          entry.result = source.result;  // terminal results are immutable
          entry.result.id = id;
          entry.result.name = entry.spec.name;
          entry.result.circuit.name = entry.spec.name;
          // The twin did none of the work: only the cache-hit marker is
          // its own. Summing sim_jobs/unique_simulations over per-job
          // records must match the work actually performed.
          stats = JobStats{};
          stats.job_cache_hit = true;
          ++job_cache_hits_;
          served_from_cache = true;
          break;
        }
        if (source.state == JobState::kCancelled ||
            source.state == JobState::kFailed) {
          // The owner came to nothing: take the identity over and run
          // for real (later duplicates wait on -- or reuse -- this job).
          result_cache_[key] = id;
          break;
        }
        cv_.wait(cache_lock);  // owner still running; re-check on wake
      }
    }
    if (!served_from_cache && !cancelled_while_waiting) {
      run_job(entry, &stats);
    }
    stats.wall_seconds = watch.seconds();

    lock.lock();
    // Live progress (candidates_walked) streamed in through the hook;
    // everything else lands here, under the lock status() reads with.
    stats.candidates_walked =
        std::max(stats.candidates_walked, entry.stats.candidates_walked);
    entry.stats = stats;
    entry.result.stats = stats;
    entry.state = entry.result.state;
    completion_order_.push_back(id);
    cv_.notify_all();
  }
}

void Scheduler::run_job(JobEntry& entry, JobStats* stats) {
  const JobSpec& spec = entry.spec;
  JobResult& result = entry.result;
  try {
    flow::FlowHooks hooks;
    hooks.fleet = &fleet_;
    hooks.cancelled = [&entry] {
      return entry.cancel_requested.load(std::memory_order_relaxed);
    };
    hooks.on_progress = [this, &entry](std::size_t walked) {
      const std::lock_guard<std::mutex> lock(mutex_);
      entry.stats.candidates_walked = walked;
    };
    switch (spec.mode) {
      case JobMode::kMinEffCyc: {
        result.circuit = flow::run_flow(spec.name, spec.rrg, spec.flow, hooks);
        stats->candidates_walked = result.circuit.candidates_walked;
        stats->sim_jobs = result.circuit.sim_jobs;
        stats->unique_simulations = result.circuit.unique_simulations;
        stats->walk_seconds = result.circuit.walk_seconds;
        stats->sim_wait_seconds = result.circuit.sim_wait_seconds;
        result.tau = result.circuit.candidates.empty()
                         ? 0.0
                         : result.circuit.candidates.front().tau;
        result.theta_sim = result.circuit.candidates.empty()
                               ? 0.0
                               : result.circuit.candidates.front().theta_sim;
        result.xi_sim = result.circuit.xi_sim_min;
        result.state = result.circuit.cancelled ||
                               entry.cancel_requested.load(
                                   std::memory_order_relaxed)
                           ? JobState::kCancelled
                           : JobState::kDone;
        break;
      }
      case JobMode::kScoreOnly: {
        const sim::SimOptions sopt = flow::scoring_options(spec.flow);
        Stopwatch sim_watch;
        const sim::SimTicket ticket =
            fleet_.submit_async(Rrg(spec.rrg), sopt);
        // Released on unwind too: wait() rethrows simulation failures,
        // and a leaked ticket would pin its job in the shared fleet for
        // the scheduler's lifetime.
        const TicketRelease release{&fleet_, ticket};
        const sim::SimReport report = fleet_.wait(ticket);
        stats->sim_wait_seconds = sim_watch.seconds();
        stats->sim_jobs = 1;
        stats->unique_simulations = ticket.fresh ? 1 : 0;
        result.tau = cycle_time(spec.rrg).tau;
        result.theta_sim = report.theta;
        result.xi_sim = effective_cycle_time(result.tau, report.theta);
        // Non-walk jobs have no step boundary: the primitive runs to
        // completion, but a cancel() that returned true must still be
        // observable -- the job terminates kCancelled (result fields
        // stay populated for the curious).
        result.state = entry.cancel_requested.load(std::memory_order_relaxed)
                           ? JobState::kCancelled
                           : JobState::kDone;
        break;
      }
      case JobMode::kMinCyc: {
        OptOptions opt;
        opt.epsilon = spec.flow.epsilon;
        opt.milp.time_limit_s = spec.flow.milp_timeout_s;
        Stopwatch walk_watch;
        const RcSolveResult solve = min_cyc(spec.rrg, spec.min_cyc_x, opt);
        stats->walk_seconds = walk_watch.seconds();
        ELRR_REQUIRE(solve.feasible, "MIN_CYC(", spec.min_cyc_x,
                     ") infeasible for '", spec.name, "'");
        const Rrg tuned = apply_config(spec.rrg, solve.config);
        const sim::SimOptions sopt = flow::scoring_options(spec.flow);
        Stopwatch sim_watch;
        const sim::SimTicket ticket = fleet_.submit_async(Rrg(tuned), sopt);
        const TicketRelease release{&fleet_, ticket};
        const sim::SimReport report = fleet_.wait(ticket);
        stats->sim_wait_seconds = sim_watch.seconds();
        stats->sim_jobs = 1;
        stats->unique_simulations = ticket.fresh ? 1 : 0;
        result.tau = cycle_time(tuned).tau;
        result.theta_sim = report.theta;
        result.xi_sim = effective_cycle_time(result.tau, report.theta);
        result.state = entry.cancel_requested.load(std::memory_order_relaxed)
                           ? JobState::kCancelled
                           : JobState::kDone;
        break;
      }
    }
  } catch (const std::exception& e) {
    // A failed job reports, never wedges: waiters get a terminal result
    // with the error text and the worker moves on. The flow releases its
    // fleet tickets on unwind (flow::Engine's TicketGuard); any still
    // in-flight simulations finish harmlessly into the session cache,
    // so the shared fleet keeps serving the next job.
    result.state = JobState::kFailed;
    result.error = e.what();
  }
}

JobSnapshot Scheduler::status(JobId id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ELRR_REQUIRE(id < jobs_.size(), "unknown job id ", id);
  const JobEntry& entry = *jobs_[id];
  return JobSnapshot{entry.state, entry.stats};
}

JobResult Scheduler::wait(JobId id) {
  std::unique_lock<std::mutex> lock(mutex_);
  ELRR_REQUIRE(id < jobs_.size(), "unknown job id ", id);
  JobEntry& entry = *jobs_[id];
  cv_.wait(lock, [&] {
    return entry.state == JobState::kDone ||
           entry.state == JobState::kCancelled ||
           entry.state == JobState::kFailed;
  });
  return entry.result;
}

std::vector<JobResult> Scheduler::wait_all() {
  std::size_t count = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    count = jobs_.size();
  }
  std::vector<JobResult> results;
  results.reserve(count);
  for (JobId id = 0; id < count; ++id) results.push_back(wait(id));
  return results;
}

bool Scheduler::cancel(JobId id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ELRR_REQUIRE(id < jobs_.size(), "unknown job id ", id);
  JobEntry& entry = *jobs_[id];
  if (entry.state == JobState::kQueued) {
    for (std::deque<JobId>& queue : queues_) {
      const auto it = std::find(queue.begin(), queue.end(), id);
      if (it != queue.end()) {
        queue.erase(it);
        break;
      }
    }
    entry.state = JobState::kCancelled;
    entry.result.id = id;
    entry.result.name = entry.spec.name;
    entry.result.mode = entry.spec.mode;
    entry.result.state = JobState::kCancelled;
    completion_order_.push_back(id);
    cv_.notify_all();
    return true;
  }
  if (entry.state == JobState::kRunning) {
    entry.cancel_requested.store(true, std::memory_order_relaxed);
    // A running twin may be parked in the result-cache ownership loop
    // waiting on its duplicate: wake it so the cancellation is observed
    // now, not at the twin's completion.
    cv_.notify_all();
    return true;
  }
  return false;
}

void Scheduler::resume() {
  const std::lock_guard<std::mutex> lock(mutex_);
  paused_ = false;
  cv_.notify_all();
}

void Scheduler::pause() {
  const std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

SchedulerStats Scheduler::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  SchedulerStats stats;
  stats.submitted = jobs_.size();
  stats.job_cache_hits = job_cache_hits_;
  for (const std::unique_ptr<JobEntry>& entry : jobs_) {
    switch (entry->state) {
      case JobState::kQueued: ++stats.queued; break;
      case JobState::kRunning: ++stats.running; break;
      case JobState::kDone: ++stats.completed; break;
      case JobState::kCancelled: ++stats.cancelled; break;
      case JobState::kFailed: ++stats.failed; break;
    }
  }
  return stats;
}

std::vector<JobId> Scheduler::completion_order() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return completion_order_;
}

}  // namespace elrr::svc
