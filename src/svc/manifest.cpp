#include "svc/manifest.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <set>
#include <utility>

#include "bench89/generator.hpp"
#include "io/rrg_format.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/strings.hpp"

namespace elrr::svc {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw InvalidInputError(
      detail::concat("manifest line ", line, ": ", message));
}

/// Minimal strict parser for one *flat* JSON object -- the only shape a
/// manifest line may take. Not a general JSON parser on purpose: no
/// nesting, no arrays, no null; every violation is a loud error with the
/// line number (the alternative, a lenient scan, is how malformed CI
/// manifests silently drop jobs).
class LineParser {
 public:
  LineParser(std::string_view text, int line) : text_(text), line_(line) {}

  ManifestEntry parse() {
    ManifestEntry entry;
    entry.line = line_;
    skip_ws();
    if (at_end()) fail(line_, "empty manifest line (expected a JSON object)");
    expect('{', "expected '{'");
    skip_ws();
    if (peek() == '}') {
      ++pos_;
    } else {
      for (;;) {
        const std::string key = parse_string("object key");
        if (!keys_.insert(key).second) fail(line_, "duplicate key \"" + key + "\"");
        skip_ws();
        expect(':', "expected ':' after key \"" + key + "\"");
        skip_ws();
        assign(entry, key);
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          skip_ws();
          continue;
        }
        expect('}', "expected ',' or '}'");
        break;
      }
    }
    skip_ws();
    if (!at_end()) fail(line_, "trailing characters after the JSON object");
    validate(entry);
    return entry;
  }

 private:
  bool at_end() const { return pos_ >= text_.size(); }
  char peek() const { return at_end() ? '\0' : text_[pos_]; }
  void skip_ws() {
    while (!at_end() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  void expect(char c, const std::string& message) {
    if (peek() != c) fail(line_, message);
    ++pos_;
  }

  std::string parse_string(const char* what) {
    if (peek() != '"') fail(line_, detail::concat("expected a string for ", what));
    ++pos_;
    std::string out;
    for (;;) {
      if (at_end()) fail(line_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (at_end()) fail(line_, "unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          default:
            fail(line_, detail::concat("unsupported escape \\", esc));
        }
        continue;
      }
      out.push_back(c);
    }
  }

  double parse_number(const std::string& key) {
    const std::size_t start = pos_;
    while (!at_end() && (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                         text_[pos_] == '-' || text_[pos_] == '+' ||
                         text_[pos_] == '.' || text_[pos_] == 'e' ||
                         text_[pos_] == 'E')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (token.empty() || end == nullptr || *end != '\0' ||
        !std::isfinite(value)) {
      fail(line_, "key \"" + key + "\": expected a number");
    }
    return value;
  }

  bool parse_bool(const std::string& key) {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return true;
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return false;
    }
    fail(line_, "key \"" + key + "\": expected true or false");
  }

  std::uint64_t parse_u64(const std::string& key, std::uint64_t min_value) {
    const double value = parse_number(key);
    if (value < 0.0 || value != std::floor(value)) {
      fail(line_, "key \"" + key + "\": expected a non-negative integer");
    }
    const auto integral = static_cast<std::uint64_t>(value);
    if (integral < min_value) {
      fail(line_, detail::concat("key \"", key, "\": must be >= ", min_value));
    }
    return integral;
  }

  double parse_positive(const std::string& key) {
    const double value = parse_number(key);
    if (value <= 0.0) fail(line_, "key \"" + key + "\": must be positive");
    return value;
  }

  void assign(ManifestEntry& entry, const std::string& key) {
    if (key == "circuit") {
      entry.circuit = parse_string("\"circuit\"");
    } else if (key == "input") {
      entry.input = parse_string("\"input\"");
    } else if (key == "name") {
      entry.name = parse_string("\"name\"");
    } else if (key == "mode") {
      const std::string mode = parse_string("\"mode\"");
      if (mode == "min_eff_cyc" || mode == "flow") {
        entry.mode = JobMode::kMinEffCyc;
      } else if (mode == "min_cyc") {
        entry.mode = JobMode::kMinCyc;
      } else if (mode == "score" || mode == "score_only") {
        entry.mode = JobMode::kScoreOnly;
      } else if (mode == "portfolio") {
        entry.mode = JobMode::kPortfolio;
      } else {
        fail(line_, "unknown mode \"" + mode +
                        "\" (min_eff_cyc|min_cyc|score|portfolio)");
      }
    } else if (key == "priority") {
      const std::string priority = parse_string("\"priority\"");
      if (priority == "high") {
        entry.priority = JobPriority::kHigh;
      } else if (priority == "normal") {
        entry.priority = JobPriority::kNormal;
      } else if (priority == "low") {
        entry.priority = JobPriority::kLow;
      } else {
        fail(line_, "unknown priority \"" + priority +
                        "\" (high|normal|low)");
      }
    } else if (key == "seed") {
      entry.seed = parse_u64(key, 0);
    } else if (key == "cycles") {
      entry.cycles = parse_u64(key, 1);
    } else if (key == "epsilon") {
      entry.epsilon = parse_positive(key);
    } else if (key == "timeout") {
      entry.timeout = parse_positive(key);
    } else if (key == "min_cyc_x") {
      const double x = parse_number(key);
      if (x < 1.0) fail(line_, "key \"min_cyc_x\": must be >= 1");
      entry.min_cyc_x = x;
    } else if (key == "deadline") {
      entry.deadline = parse_positive(key);
    } else if (key == "retries") {
      entry.retries = parse_u64(key, 0);
    } else if (key == "heur") {
      entry.heur = parse_bool(key);
    } else if (key == "polish") {
      entry.polish = parse_bool(key);
    } else {
      fail(line_, "unknown key \"" + key + "\"");
    }
  }

  void validate(const ManifestEntry& entry) {
    if (entry.circuit.empty() == entry.input.empty()) {
      fail(line_, "provide exactly one of \"circuit\" or \"input\"");
    }
  }

  std::string_view text_;
  int line_;
  std::size_t pos_ = 0;
  std::set<std::string> keys_;
};

}  // namespace

ManifestEntry parse_manifest_line(std::string_view text, int line_number) {
  return LineParser(text, line_number).parse();
}

std::vector<ManifestEntry> parse_manifest(std::string_view text) {
  failpoint::trip("svc.manifest");
  std::vector<ManifestEntry> entries;
  int line_number = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t newline = text.find('\n', start);
    std::string_view line = newline == std::string_view::npos
                                ? text.substr(start)
                                : text.substr(start, newline - start);
    ++line_number;
    // A single trailing newline is the JSONL convention, not an empty
    // job; anything else blank is an error (the strict contract).
    const bool last = newline == std::string_view::npos;
    if (!(last && trim(line).empty() && line_number > 1)) {
      entries.push_back(parse_manifest_line(line, line_number));
    }
    if (last) break;
    start = newline + 1;
  }
  ELRR_REQUIRE(!entries.empty(), "manifest has no jobs");
  return entries;
}

JobSpec materialize(const ManifestEntry& entry,
                    const flow::FlowOptions& base, JobMode default_mode) {
  JobSpec spec;
  spec.mode = entry.mode.value_or(default_mode);
  spec.priority = entry.priority;
  spec.flow = base;
  if (entry.seed) spec.flow.seed = *entry.seed;
  if (entry.epsilon) spec.flow.epsilon = *entry.epsilon;
  if (entry.timeout) spec.flow.milp_timeout_s = *entry.timeout;
  if (entry.cycles) spec.flow.sim_cycles = static_cast<std::size_t>(*entry.cycles);
  if (entry.heur) spec.flow.use_heuristic = *entry.heur;
  if (entry.polish) spec.flow.polish = *entry.polish;
  if (entry.min_cyc_x) spec.min_cyc_x = *entry.min_cyc_x;
  if (entry.deadline) spec.deadline_s = *entry.deadline;
  if (entry.retries) spec.retries = static_cast<std::size_t>(*entry.retries);
  if (!entry.circuit.empty()) {
    const bench89::CircuitSpec& circuit = bench89::spec_by_name(entry.circuit);
    spec.rrg = bench89::make_table2_rrg(circuit, spec.flow.seed);
    spec.name = entry.name.empty() ? entry.circuit : entry.name;
    // Mirror run_circuit's scaling policy: past the exact-MILP ceiling
    // the flow switches to the heuristic-only walk.
    spec.flow.heuristic_only =
        circuit.n_edges > spec.flow.exact_max_edges;
  } else {
    io::NamedRrg named = io::load_rrg_file(entry.input);
    spec.rrg = std::move(named.rrg);
    spec.name = !entry.name.empty()
                    ? entry.name
                    : (!named.name.empty() ? named.name : entry.input);
    spec.flow.heuristic_only =
        static_cast<int>(spec.rrg.num_edges()) > spec.flow.exact_max_edges;
  }
  return spec;
}

}  // namespace elrr::svc
