#pragma once

/// \file manifest.hpp
/// JSONL job manifests for the batch service (`elrr batch`): one job per
/// line, each a flat JSON object. Strictly validated -- empty lines,
/// malformed JSON, unknown or duplicate keys, type mismatches and
/// out-of-range values all throw InvalidInputError *with the line
/// number*, so a CI batch fails loudly at the offending line instead of
/// silently skipping work.
///
/// Line shape (all keys optional except exactly one of circuit/input):
///   {"circuit": "s526"}
///   {"input": "path/to/design.rrg", "mode": "score"}
///   {"circuit": "s27", "name": "warmup", "mode": "min_cyc",
///    "priority": "low", "seed": 7, "epsilon": 0.05, "timeout": 6,
///    "cycles": 20000, "heur": true, "polish": false, "min_cyc_x": 1.5}
///
/// Keys:
///   circuit   Table-2 circuit name (generated; exclusive with input)
///   input     .rrg file path (exclusive with circuit)
///   name      display name (default: circuit or input)
///   mode      "min_eff_cyc" (alias "flow") | "min_cyc" |
///             "score" (alias "score_only") | "portfolio" (anytime
///             heuristic + exact race). Unset lines take materialize()'s
///             default mode -- min_eff_cyc unless the caller overrides
///             it (`elrr batch` passes portfolio when ELRR_PORTFOLIO=1)
///   priority  "high" | "normal" (default) | "low"
///   seed      non-negative integer
///   epsilon   positive number
///   timeout   positive number (seconds per MILP)
///   cycles    integer >= 1 (measured cycles per run)
///   heur      true/false (merge the MILP-free heuristic)
///   polish    true/false (MAX_THR polish)
///   min_cyc_x number >= 1 (MIN_CYC throughput bound parameter)
///   deadline  positive number (wall seconds across all attempts;
///             overrides ELRR_JOB_DEADLINE for this job)
///   retries   non-negative integer (transient-failure retry budget;
///             overrides ELRR_RETRY_MAX for this job)
///
/// Unset keys inherit from the base FlowOptions the caller provides
/// (elrr batch passes FlowOptions::from_env(), so ELRR_* env knobs are
/// the batch-wide defaults and the manifest overrides per job).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "flow/circuit_flow.hpp"
#include "svc/scheduler.hpp"

namespace elrr::svc {

/// One parsed manifest line (not yet materialized into a JobSpec).
struct ManifestEntry {
  int line = 0;  ///< 1-based manifest line number (error reporting)
  std::string name;
  std::string circuit;
  std::string input;
  std::optional<JobMode> mode;  ///< unset: materialize()'s default_mode
  JobPriority priority = JobPriority::kNormal;
  std::optional<std::uint64_t> seed;
  std::optional<double> epsilon;
  std::optional<double> timeout;
  std::optional<std::uint64_t> cycles;
  std::optional<bool> heur;
  std::optional<bool> polish;
  std::optional<double> min_cyc_x;
  std::optional<double> deadline;
  std::optional<std::uint64_t> retries;
};

/// Parses one JSONL manifest line. Throws InvalidInputError prefixed
/// with "manifest line <line_number>:" on any problem (empty line
/// included).
ManifestEntry parse_manifest_line(std::string_view text, int line_number);

/// Parses a whole manifest (one JSON object per line; every line must be
/// a job -- blank lines are errors, per the strict contract above).
/// Throws with the offending line number.
std::vector<ManifestEntry> parse_manifest(std::string_view text);

/// Builds the JobSpec for one entry: generates the named circuit or
/// loads the .rrg file, then layers the entry's overrides onto `base`.
/// Lines without an explicit "mode" take `default_mode` (elrr batch maps
/// ELRR_PORTFOLIO=1 to JobMode::kPortfolio here).
JobSpec materialize(const ManifestEntry& entry,
                    const flow::FlowOptions& base,
                    JobMode default_mode = JobMode::kMinEffCyc);

}  // namespace elrr::svc
