#pragma once

/// \file scheduler.hpp
/// Multi-circuit optimization service: one svc::Scheduler multiplexes
/// many optimization jobs -- each a circuit + FlowOptions + mode -- onto
/// **one shared sim::SimFleet** and a bounded pool of MILP/walk workers.
///
/// Why a service instead of one flow::Engine per circuit: the engine
/// made a single circuit's walk and scoring concurrent, but every
/// consumer (bench_table1/2, iscas_flow, the elrr CLI) still built one
/// engine per circuit, so fleet workers, the canonical result cache and
/// warm pool state were torn down between jobs. The scheduler keeps them
/// standing: jobs enter a priority-classed queue, walk workers pick them
/// fair-share, every job's candidates score on the one multi-client
/// fleet (cross-*job* candidate dedup via the fleet's session cache),
/// and completed whole-job results feed a cross-job canonical-key result
/// cache -- a duplicate job (same circuit content + same result-affecting
/// options + same mode) is served from it without re-walking. This is
/// the data-driven "standing re-optimization service" shape argued for
/// by application-aware retiming (arXiv:1612.08163), and the layer later
/// scaling steps (remote/sharded workers, request serving) plug into.
///
/// Scheduling policy: three FIFO classes (high/normal/low) drained by
/// weighted round-robin credits (4/2/1) -- high-priority work is
/// preferred but a stream of it cannot starve the lower classes, and
/// within a class jobs run in submission order. Job execution is
/// non-preemptive (one worker per job; a huge circuit occupies one
/// worker, never the queue); *simulation* fairness comes from the shared
/// fleet, whose work queue interleaves batch-sized run slices of every
/// job's candidates across its own pool.
///
/// Determinism contract: a job's result is bit-exact vs a standalone run
/// of the same (circuit, FlowOptions, mode) through a solo flow::Engine
/// -- at any worker count, any fleet width and any job interleaving. The
/// walk itself is single-threaded per job and never shares MILP state;
/// candidate thetas are pinned by the fleet's determinism contract
/// (cross-job dedup fans out bit-identical cached results); and the
/// cross-job result cache only ever returns results produced by that
/// same contract. Wall-clock fields and cache-hit counters are the only
/// schedule-dependent outputs.
///
/// Cancellation: cancel(id) dequeues a queued job immediately; a
/// running job observes the request at its next step boundary (walks)
/// or after its current primitive (MIN_CYC solves, score simulations --
/// they have no mid-primitive boundary) and terminates as kCancelled
/// either way. The flow releases its fleet tickets before the worker
/// moves on, so cancellation never poisons the next job.
///
/// Threading: submit/status/wait/cancel/stats are thread-safe; workers
/// are internal. wait_all() may be called by one thread at a time.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/rrg.hpp"
#include "flow/circuit_flow.hpp"
#include "sim/fleet.hpp"
#include "support/stopwatch.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace elrr::svc {

class DiskCache;  // svc/disk_cache.hpp (persistent result cache layer)
struct DiskCacheStats;

using JobId = std::size_t;

/// What a job computes.
enum class JobMode : std::uint8_t {
  /// Simulate the circuit as submitted (no optimization): theta + xi.
  kScoreOnly = 0,
  /// One MIN_CYC(x) solve (minimize cycle time s.t. Theta_lp >= 1/x),
  /// scored by simulation. JobSpec::min_cyc_x picks x (default 1).
  kMinCyc,
  /// The full MIN_EFF_CYC flow (Pareto walk + heuristic merge +
  /// simulation reranking) -- flow::run_flow on the shared fleet.
  kMinEffCyc,
  /// Anytime portfolio: the MILP-free heuristic flow runs first and its
  /// answer is published immediately (JobStats::anytime_* via status()),
  /// then the exact MIN_EFF_CYC flow runs and its result *supersedes*
  /// the heuristic's. A deadline expiring mid-exact keeps the heuristic
  /// answer (degraded, like the kMinEffCyc ladder -- never cached); the
  /// caches only ever store the exact result.
  kPortfolio,
};

/// Queueing class; within a class, FIFO. Weighted round-robin across
/// classes (4/2/1) keeps low-priority work from starving.
enum class JobPriority : std::uint8_t { kHigh = 0, kNormal = 1, kLow = 2 };

enum class JobState : std::uint8_t {
  kQueued = 0,
  kRunning,
  kDone,
  kCancelled,  ///< dequeued, or the walk stopped at a step boundary
  kFailed,     ///< the job threw; JobResult::error carries the message
  kRejected,   ///< admission control refused it; error carries the reason
};

const char* to_string(JobMode mode);
const char* to_string(JobState state);

/// One optimization request.
struct JobSpec {
  std::string name;  ///< display name (results, logs)
  Rrg rrg;           ///< the circuit (strongly connected + live)
  flow::FlowOptions flow;  ///< knobs; sim_threads/dedup/cache_cap are the
                           ///< *fleet's* here and ignored per job
  JobMode mode = JobMode::kMinEffCyc;
  JobPriority priority = JobPriority::kNormal;
  /// MIN_CYC throughput bound parameter x (Theta_lp >= 1/x); >= 1.
  double min_cyc_x = 1.0;
  /// Per-job wall budget in seconds, covering every retry attempt.
  /// Unset: SchedulerOptions::job_deadline_s. 0 = unlimited. A walk job
  /// whose deadline expires degrades to the heuristic flow (flagged
  /// `degraded`); score/MIN_CYC jobs fail with a deadline error.
  std::optional<double> deadline_s;
  /// Transient-failure retry budget for this job. Unset:
  /// SchedulerOptions::retry_max.
  std::optional<std::size_t> retries;
};

/// Structured per-job progress/stats. `candidates_walked` updates live
/// while the job runs (status()); the rest settle at completion.
struct JobStats {
  std::size_t candidates_walked = 0;  ///< Pareto-walk emissions so far
  std::size_t sim_jobs = 0;           ///< fleet submissions the job made
  std::size_t unique_simulations = 0; ///< fresh fleet jobs (rest cached)
  bool job_cache_hit = false;  ///< served from the cross-job result cache
  bool disk_cache_hit = false; ///< served from the persistent disk cache
  std::size_t retries = 0;     ///< transient-failure re-runs this job took
  /// Peak count of fleet workers observed busy on one slice for longer
  /// than SchedulerOptions::stall_threshold_s while this job waited on
  /// the fleet (SimFleet::stuck_workers). Nonzero means the job's wall
  /// time was shaped by a wedged or straggling worker, not by its own
  /// work. Schedule-dependent, like the wall-clock fields.
  std::size_t stalled_workers = 0;
  double wall_seconds = 0.0;   ///< queue-exit to completion
  double walk_seconds = 0.0;   ///< cpu inside ParetoWalk::advance
  double sim_wait_seconds = 0.0;  ///< blocked on the fleet
  /// kPortfolio: the heuristic leg's anytime answer, published the moment
  /// it completes (status() streams it while the exact leg still runs).
  bool anytime_ready = false;
  double anytime_xi = 0.0;       ///< heuristic best effective cycle time
  double anytime_seconds = 0.0;  ///< wall seconds until the anytime answer
};

/// A completed (or cancelled/failed) job.
struct JobResult {
  JobId id = 0;
  std::string name;
  JobMode mode = JobMode::kMinEffCyc;
  JobState state = JobState::kQueued;
  /// Failure/rejection/degradation detail: non-empty when state is
  /// kFailed or kRejected, and when `degraded` is set (the reason the
  /// degradation ladder was taken). Empty for a clean kDone.
  std::string error;
  /// kDone via the degradation ladder (deadline expired mid-walk; the
  /// heuristic flow produced this result instead of the exact walk).
  /// Degraded results are never cached -- a later identical job with a
  /// healthier budget recomputes for real.
  bool degraded = false;
  /// kMinEffCyc / kPortfolio: the full table-row result (partial when
  /// cancelled; the heuristic leg's when a portfolio degraded).
  flow::CircuitResult circuit;
  /// kScoreOnly / kMinCyc: the single scored configuration.
  double tau = 0.0;
  double theta_sim = 0.0;
  double xi_sim = 0.0;
  JobStats stats;
};

/// Live job view: state + a stats snapshot.
struct JobSnapshot {
  JobState state = JobState::kQueued;
  JobStats stats;
};

struct SchedulerOptions {
  /// MILP/walk worker threads (each runs one job at a time; >= 1).
  std::size_t workers = 1;
  /// Shared fleet worker-pool size (0 = hardware concurrency).
  std::size_t sim_threads = 1;
  /// Candidate dedup in the shared fleet (cross-job; results identical).
  bool sim_dedup = true;
  /// Byte cap of the fleet's session result cache (0 = unbounded).
  std::size_t sim_cache_cap = sim::kDefaultSimCacheCapBytes;
  /// Cross-job whole-result cache: duplicate jobs (identical circuit
  /// content, result-affecting options and mode) are served from the
  /// first completion instead of re-run. Results identical either way.
  bool job_cache = true;
  /// Start with dispatch paused: submissions queue but no worker picks
  /// one until resume(). Makes multi-job pick order independent of
  /// submission timing (elrr batch submits everything first).
  bool start_paused = false;
  /// Default per-job wall budget in seconds (JobSpec::deadline_s
  /// overrides per job); 0 = unlimited. Env ELRR_JOB_DEADLINE.
  double job_deadline_s = 0.0;
  /// Default transient-failure retry budget (bounded exponential
  /// backoff between attempts); JobSpec::retries overrides per job.
  /// Env ELRR_RETRY_MAX.
  std::size_t retry_max = 2;
  /// Seconds one fleet worker may stay busy on a single slice before the
  /// scheduler's bounded waits count it as *stuck* (fed to
  /// SimFleet::stuck_workers; peak surfaced as JobStats::stalled_workers
  /// and named in deadline-expiry errors). Env ELRR_STALL_THRESHOLD;
  /// must be strictly positive.
  double stall_threshold_s = 30.0;
  /// Admission control: jobs submitted while this many are already
  /// queued are terminally kRejected with a reason instead of enqueued
  /// (bounded backlog, the first `elrr serve` building block). 0 =
  /// unbounded.
  std::size_t max_queue_depth = 0;
  /// Persistent result cache directory (layered *under* the in-memory
  /// cross-job cache; empty = disabled). Env ELRR_DISK_CACHE_DIR.
  std::string disk_cache_dir;
  /// Byte cap of the persistent cache (0 = unbounded). Env
  /// ELRR_DISK_CACHE_CAP.
  std::size_t disk_cache_cap = 0;
  /// Periodic stats snapshot: every `snapshot_period_ms` a dedicated
  /// publisher thread writes the unified stats object (queue depths,
  /// fleet utilization, cache counters, obs summary) as JSON to
  /// `snapshot_path` via atomic tmp+rename -- `elrr top` reads it. A
  /// final snapshot is written at shutdown. Empty path = disabled. Env
  /// ELRR_STATS_SNAPSHOT=path:period_ms.
  std::string snapshot_path;
  std::uint64_t snapshot_period_ms = 0;

  /// Fleet knobs from FlowOptions::from_env() plus the robustness knobs
  /// (ELRR_JOB_DEADLINE, ELRR_RETRY_MAX, ELRR_STALL_THRESHOLD,
  /// ELRR_DISK_CACHE_DIR, ELRR_DISK_CACHE_CAP) and the snapshot
  /// publisher (ELRR_STATS_SNAPSHOT), all validated strictly -- a
  /// malformed value throws InvalidInputError naming the variable.
  /// workers/start_paused stay at their defaults (caller-owned).
  static SchedulerOptions from_env();
};

struct SchedulerStats {
  std::size_t submitted = 0;
  std::size_t completed = 0;  ///< kDone (degraded included)
  std::size_t cancelled = 0;
  std::size_t failed = 0;
  std::size_t rejected = 0;   ///< refused by admission control
  std::size_t degraded = 0;   ///< kDone via the degradation ladder
  std::uint64_t job_cache_hits = 0;
  std::uint64_t disk_cache_hits = 0;
  std::uint64_t retries = 0;  ///< transient-failure re-runs, all jobs
  std::size_t queued = 0;   ///< currently waiting
  std::size_t running = 0;  ///< currently executing
};

/// The multi-job optimization scheduler. One instance serves any number
/// of jobs over its lifetime; workers and the shared fleet persist.
class Scheduler {
 public:
  explicit Scheduler(const SchedulerOptions& options = {});
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueues one job; returns its id (dense, submission-ordered).
  /// Thread-safe.
  JobId submit(JobSpec spec);

  /// State + live stats snapshot. Thread-safe.
  JobSnapshot status(JobId id) const;

  /// Blocks until the job reaches a terminal state and returns its
  /// result (state kDone, kCancelled or kFailed -- a failed job reports
  /// its error text; wait never throws for job failures). Thread-safe.
  JobResult wait(JobId id);

  /// Waits for every job submitted so far and returns all results in
  /// job-id (submission) order. Single-client.
  std::vector<JobResult> wait_all();

  /// Queued job: dequeued immediately (state kCancelled). Running job:
  /// a walk stops at its next step boundary; MIN_CYC and score jobs
  /// finish their current primitive -- either way the job terminates as
  /// kCancelled once cancel() returned true. Returns false when the job
  /// is already terminal. Thread-safe.
  bool cancel(JobId id);

  /// Releases dispatch when the scheduler was built start_paused (or
  /// pause()d); idempotent.
  void resume();
  /// Stops picking *new* jobs (running ones finish). For deterministic
  /// multi-job submission windows.
  void pause();

  /// The shared simulation fleet (cache_stats() for cross-job candidate
  /// dedup observability).
  sim::SimFleet& fleet() { return fleet_; }
  const sim::SimFleet& fleet() const { return fleet_; }

  SchedulerStats stats() const;
  /// The unified nested "stats" JSON object -- scheduler, fleet cache,
  /// proc tier, disk cache (when enabled) and the MILP session stats
  /// summed over terminal jobs. Byte-identical to the `elrr batch`
  /// summary's "stats" value (the CLI renders through this), and the
  /// body of the periodic snapshot. Thread-safe.
  std::string stats_json() const;
  /// Writes one stats snapshot document (the periodic publisher's
  /// payload: uptime, queue depths, fleet utilization, stats_json and
  /// the obs summary) to `path` via atomic tmp+rename. Throws on IO
  /// failure. Thread-safe.
  void write_stats_snapshot(const std::string& path) const;
  /// Ids of completed-so-far jobs in completion order (fair-share /
  /// priority observability; includes done, cancelled, failed and
  /// rejected).
  std::vector<JobId> completion_order() const;
  /// The persistent result cache, or nullptr when disabled
  /// (observability; see DiskCache::stats()).
  const DiskCache* disk_cache() const { return disk_cache_.get(); }

 private:
  struct JobEntry {
    JobSpec spec;
    JobState state = JobState::kQueued;
    JobResult result;
    JobStats stats;
    std::atomic<bool> cancel_requested{false};
    /// obs timeline anchor: steady_clock ns at submit (0 when tracing
    /// was disarmed at submit time); the job.queued span's start.
    std::int64_t submit_ns = 0;
  };

  void worker_main();
  /// The snapshot publisher thread body: writes write_stats_snapshot to
  /// options_.snapshot_path every snapshot_period_ms, plus one final
  /// snapshot at shutdown so the file ends in the terminal state. IO
  /// failures warn once on stderr and never kill the scheduler.
  void snapshot_main();
  /// Picks the next job id under the scheduler mutex, honoring the
  /// weighted round-robin credits; returns false when every class is
  /// empty.
  bool pick_next_locked(JobId* id);
  /// One job end to end on the calling worker thread: deadline setup,
  /// the attempt/retry loop around run_job, the degradation ladder.
  void run_job_robust(JobEntry& entry, JobStats* stats);
  /// Executes one attempt of a job, filling entry.result and the local
  /// `stats` (merged into the entry under the scheduler lock by the
  /// caller). `transient` reports whether a kFailed outcome may retry.
  void run_job(JobEntry& entry, JobStats* stats, const Deadline& deadline,
               bool* transient);
  /// Canonical identity of a job for the cross-job result cache: the
  /// circuit's simulation-visible content + mode + every result-affecting
  /// FlowOptions field (never wall-clock knobs).
  static std::string job_key(const JobSpec& spec);

  SchedulerOptions options_;
  sim::SimFleet fleet_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;  ///< dispatch + completion events
  bool stop_ = false;
  bool paused_ = false;
  std::vector<std::unique_ptr<JobEntry>> jobs_;
  std::deque<JobId> queues_[3];  ///< one FIFO per priority class
  unsigned credits_[3] = {0, 0, 0};
  std::unordered_map<std::string, JobId> result_cache_;  ///< key -> done job
  std::uint64_t job_cache_hits_ = 0;
  std::uint64_t disk_cache_hits_ = 0;
  std::uint64_t total_retries_ = 0;
  std::vector<JobId> completion_order_;
  std::vector<std::thread> workers_;
  /// Snapshot publisher (joinable only when options_.snapshot_path is
  /// set); woken early by shutdown through snapshot_cv_.
  std::thread snapshot_thread_;
  std::condition_variable snapshot_cv_;
  Stopwatch uptime_;
  /// Persistent result layer (nullptr = disabled). Constructed before
  /// the workers, used by them without further locking (DiskCache has
  /// its own mutex).
  std::unique_ptr<DiskCache> disk_cache_;
};

}  // namespace elrr::svc
