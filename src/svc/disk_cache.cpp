#include "svc/disk_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "obs/trace.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"

namespace elrr::svc {

namespace fs = std::filesystem;

namespace {

using bytes::append_value;

constexpr std::uint32_t kMagic = 0x43524c45;  // "ELRC"
constexpr std::uint32_t kEntryVersion = 1;
constexpr std::uint32_t kPayloadVersion = 1;

std::uint64_t fnv1a(const char* data, std::size_t size,
                    std::uint64_t hash = 1469598103934665603ULL) {
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string hex64(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buffer);
}

void append_string(std::string& out, const std::string& text) {
  append_value(out, static_cast<std::uint64_t>(text.size()));
  out.append(text);
}

/// Bounds-checked sequential reader over a byte payload. Every read_*
/// returns false on truncation; the deserializer turns that into a miss
/// instead of reading garbage.
struct Reader {
  const char* data;
  std::size_t size;
  std::size_t pos = 0;

  bool read_bytes(void* out, std::size_t n) {
    if (size - pos < n) return false;
    std::memcpy(out, data + pos, n);
    pos += n;
    return true;
  }
  template <class T>
  bool read_value(T* out) {
    return read_bytes(out, sizeof(T));
  }
  bool read_string(std::string* out) {
    std::uint64_t length = 0;
    if (!read_value(&length)) return false;
    if (size - pos < length) return false;
    out->assign(data + pos, static_cast<std::size_t>(length));
    pos += static_cast<std::size_t>(length);
    return true;
  }
  bool exhausted() const { return pos == size; }
};

/// One on-disk entry image: header + key + payload + trailing checksum.
/// The checksum covers everything before it, so any torn write, bit flip
/// or truncation is detected in one comparison.
std::string encode_entry(const std::string& key, const std::string& payload) {
  std::string entry;
  entry.reserve(key.size() + payload.size() + 40);
  append_value(entry, kMagic);
  append_value(entry, kEntryVersion);
  append_string(entry, key);
  append_string(entry, payload);
  append_value(entry, fnv1a(entry.data(), entry.size()));
  return entry;
}

/// Decodes + verifies an entry image; nullopt on any inconsistency. The
/// stored key must equal the requested one -- a 64-bit filename-hash
/// collision is thereby a miss, never a wrong result.
std::optional<std::string> decode_entry(const std::string& entry,
                                        const std::string& key) {
  if (entry.size() < sizeof(std::uint64_t)) return std::nullopt;
  const std::size_t body = entry.size() - sizeof(std::uint64_t);
  std::uint64_t checksum = 0;
  std::memcpy(&checksum, entry.data() + body, sizeof(checksum));
  if (fnv1a(entry.data(), body) != checksum) return std::nullopt;
  Reader reader{entry.data(), body};
  std::uint32_t magic = 0, version = 0;
  if (!reader.read_value(&magic) || magic != kMagic) return std::nullopt;
  if (!reader.read_value(&version) || version != kEntryVersion) {
    return std::nullopt;
  }
  std::string stored_key;
  if (!reader.read_string(&stored_key) || stored_key != key) {
    return std::nullopt;
  }
  std::string payload;
  if (!reader.read_string(&payload) || !reader.exhausted()) {
    return std::nullopt;
  }
  return payload;
}

std::optional<std::string> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) return std::nullopt;
  return content;
}

}  // namespace

DiskCache::DiskCache(const DiskCacheOptions& options)
    : dir_(options.dir), cap_bytes_(options.cap_bytes) {
  ELRR_REQUIRE(!dir_.empty(), "disk cache directory must not be empty");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_, ec)) {
    throw InvalidInputError(detail::concat(
        "disk cache directory \"", dir_, "\" cannot be created: ",
        ec.message()));
  }
  // Inventory + recovery sweep: orphaned *.tmp files are the debris of a
  // crash (or SIGKILL) between temp write and rename -- by construction
  // they were never visible as entries, so unlinking is always safe.
  for (const fs::directory_entry& file : fs::directory_iterator(dir_, ec)) {
    if (!file.is_regular_file(ec)) continue;
    const fs::path& path = file.path();
    if (path.extension() == ".tmp") {
      fs::remove(path, ec);
      continue;
    }
    if (path.extension() == ".entry") {
      ++stats_.entries;
      stats_.bytes += static_cast<std::size_t>(file.file_size(ec));
    }
  }
}

std::string DiskCache::entry_path(const std::string& key) const {
  return dir_ + "/" + hex64(fnv1a(key.data(), key.size())) + ".entry";
}

std::optional<std::string> DiskCache::load(const std::string& key) {
  OBS_SPAN("disk_cache.load");
  const std::lock_guard<std::mutex> lock(mutex_);
  try {
    failpoint::trip("disk_cache.load");
    const fs::path path = entry_path(key);
    std::error_code ec;
    if (!fs::exists(path, ec)) {
      ++stats_.misses;
      return std::nullopt;
    }
    const std::optional<std::string> entry = read_file(path);
    std::optional<std::string> payload;
    if (entry.has_value()) payload = decode_entry(*entry, key);
    if (!payload.has_value()) {
      // Torn or corrupted: unlink so the recomputed result can be
      // re-stored cleanly instead of colliding with the bad file forever.
      ++stats_.corrupt;
      ++stats_.misses;
      std::uintmax_t bytes = fs::file_size(path, ec);
      if (fs::remove(path, ec)) {
        stats_.entries -= stats_.entries > 0 ? 1 : 0;
        stats_.bytes -= std::min<std::size_t>(
            stats_.bytes, static_cast<std::size_t>(bytes));
      }
      return std::nullopt;
    }
    // LRU touch: eviction is oldest-mtime-first, so a hit refreshes.
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
    ++stats_.hits;
    return payload;
  } catch (...) {
    // Containment: an IO fault (injected or real) is a miss, never an
    // exception into the scheduler's serving path.
    ++stats_.misses;
    return std::nullopt;
  }
}

void DiskCache::store(const std::string& key, const std::string& payload) {
  OBS_SPAN("disk_cache.store");
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::string entry = encode_entry(key, payload);
  const fs::path path = entry_path(key);
  const fs::path tmp =
      fs::path(dir_) / (hex64(fnv1a(key.data(), key.size())) + "." +
                        std::to_string(++tmp_counter_) + ".tmp");
  try {
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) throw InternalError("disk cache: temp file open failed");
      out.write(entry.data(), static_cast<std::streamsize>(entry.size()));
      out.flush();
      if (!out.good()) throw InternalError("disk cache: temp write failed");
    }
    // Crash window under test: the `disk_cache.store` site fires after
    // the temp file is complete but before the rename -- exactly what a
    // SIGKILL here leaves behind. The orphan stays (the construction
    // sweep owns cleanup) and the entry is simply never published.
    failpoint::trip("disk_cache.store");
    std::error_code ec;
    const bool existed = fs::exists(path, ec);
    const std::uintmax_t old_bytes = existed ? fs::file_size(path, ec) : 0;
    fs::rename(tmp, path, ec);  // atomic publish (same directory)
    if (ec) throw InternalError("disk cache: rename failed");
    if (existed) {
      stats_.bytes -= std::min<std::size_t>(
          stats_.bytes, static_cast<std::size_t>(old_bytes));
    } else {
      ++stats_.entries;
    }
    stats_.bytes += entry.size();
    ++stats_.stores;
    evict_over_cap_locked();
  } catch (...) {
    ++stats_.store_errors;
  }
}

void DiskCache::evict_over_cap_locked() {
  if (cap_bytes_ == 0 || stats_.bytes <= cap_bytes_) return;
  struct Candidate {
    fs::path path;
    fs::file_time_type mtime;
    std::size_t bytes;
  };
  std::error_code ec;
  std::vector<Candidate> candidates;
  for (const fs::directory_entry& file : fs::directory_iterator(dir_, ec)) {
    if (!file.is_regular_file(ec)) continue;
    if (file.path().extension() != ".entry") continue;
    candidates.push_back({file.path(), file.last_write_time(ec),
                          static_cast<std::size_t>(file.file_size(ec))});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.mtime < b.mtime;
            });
  // Keep at least the newest entry: a cache whose cap is smaller than
  // one result would otherwise thrash to empty.
  for (std::size_t i = 0;
       i + 1 < candidates.size() && stats_.bytes > cap_bytes_; ++i) {
    if (!fs::remove(candidates[i].path, ec)) continue;
    stats_.bytes -= std::min(stats_.bytes, candidates[i].bytes);
    stats_.entries -= stats_.entries > 0 ? 1 : 0;
    ++stats_.evictions;
  }
}

DiskCacheStats DiskCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::string serialize_job_result(const JobResult& result) {
  std::string out;
  append_value(out, kPayloadVersion);
  append_value(out, static_cast<std::uint8_t>(result.mode));
  append_value(out, result.tau);
  append_value(out, result.theta_sim);
  append_value(out, result.xi_sim);
  const flow::CircuitResult& c = result.circuit;
  append_string(out, c.name);
  append_value(out, static_cast<std::int32_t>(c.n_simple));
  append_value(out, static_cast<std::int32_t>(c.n_early));
  append_value(out, static_cast<std::int32_t>(c.n_edges));
  append_value(out, c.xi_star);
  append_value(out, c.xi_nee);
  append_value(out, c.xi_lp_min);
  append_value(out, c.xi_sim_min);
  append_value(out, c.improve_percent);
  append_value(out, c.delta_percent);
  append_value(out, static_cast<std::uint8_t>(c.all_exact));
  append_value(out, c.seconds);
  append_value(out, static_cast<std::uint64_t>(c.candidates_walked));
  append_value(out, static_cast<std::uint64_t>(c.sim_jobs));
  append_value(out, static_cast<std::uint64_t>(c.unique_simulations));
  append_value(out, c.walk_seconds);
  append_value(out, c.sim_wait_seconds);
  append_value(out, static_cast<std::uint64_t>(c.candidates.size()));
  for (const flow::CandidateRow& row : c.candidates) {
    append_value(out, row.tau);
    append_value(out, row.theta_lp);
    append_value(out, row.theta_sim);
    append_value(out, row.err_percent);
    append_value(out, row.xi_lp);
    append_value(out, row.xi_sim);
    append_value(out, static_cast<std::int32_t>(row.bubbles));
    append_value(out, static_cast<std::uint8_t>(row.exact));
  }
  return out;
}

std::optional<JobResult> deserialize_job_result(const std::string& payload) {
  Reader reader{payload.data(), payload.size()};
  std::uint32_t version = 0;
  if (!reader.read_value(&version) || version != kPayloadVersion) {
    return std::nullopt;
  }
  JobResult result;
  std::uint8_t mode = 0;
  if (!reader.read_value(&mode)) return std::nullopt;
  result.mode = static_cast<JobMode>(mode);
  if (!reader.read_value(&result.tau)) return std::nullopt;
  if (!reader.read_value(&result.theta_sim)) return std::nullopt;
  if (!reader.read_value(&result.xi_sim)) return std::nullopt;
  flow::CircuitResult& c = result.circuit;
  std::int32_t i32 = 0;
  std::uint8_t u8 = 0;
  std::uint64_t u64 = 0;
  if (!reader.read_string(&c.name)) return std::nullopt;
  if (!reader.read_value(&i32)) return std::nullopt;
  c.n_simple = i32;
  if (!reader.read_value(&i32)) return std::nullopt;
  c.n_early = i32;
  if (!reader.read_value(&i32)) return std::nullopt;
  c.n_edges = i32;
  if (!reader.read_value(&c.xi_star)) return std::nullopt;
  if (!reader.read_value(&c.xi_nee)) return std::nullopt;
  if (!reader.read_value(&c.xi_lp_min)) return std::nullopt;
  if (!reader.read_value(&c.xi_sim_min)) return std::nullopt;
  if (!reader.read_value(&c.improve_percent)) return std::nullopt;
  if (!reader.read_value(&c.delta_percent)) return std::nullopt;
  if (!reader.read_value(&u8)) return std::nullopt;
  c.all_exact = u8 != 0;
  if (!reader.read_value(&c.seconds)) return std::nullopt;
  if (!reader.read_value(&u64)) return std::nullopt;
  c.candidates_walked = static_cast<std::size_t>(u64);
  if (!reader.read_value(&u64)) return std::nullopt;
  c.sim_jobs = static_cast<std::size_t>(u64);
  if (!reader.read_value(&u64)) return std::nullopt;
  c.unique_simulations = static_cast<std::size_t>(u64);
  if (!reader.read_value(&c.walk_seconds)) return std::nullopt;
  if (!reader.read_value(&c.sim_wait_seconds)) return std::nullopt;
  std::uint64_t rows = 0;
  if (!reader.read_value(&rows)) return std::nullopt;
  // Sanity cap: a corrupted count must not turn into a giant allocation.
  if (rows > payload.size()) return std::nullopt;
  c.candidates.reserve(static_cast<std::size_t>(rows));
  for (std::uint64_t r = 0; r < rows; ++r) {
    flow::CandidateRow row;
    if (!reader.read_value(&row.tau)) return std::nullopt;
    if (!reader.read_value(&row.theta_lp)) return std::nullopt;
    if (!reader.read_value(&row.theta_sim)) return std::nullopt;
    if (!reader.read_value(&row.err_percent)) return std::nullopt;
    if (!reader.read_value(&row.xi_lp)) return std::nullopt;
    if (!reader.read_value(&row.xi_sim)) return std::nullopt;
    if (!reader.read_value(&i32)) return std::nullopt;
    row.bubbles = i32;
    if (!reader.read_value(&u8)) return std::nullopt;
    row.exact = u8 != 0;
    c.candidates.push_back(row);
  }
  if (!reader.exhausted()) return std::nullopt;
  result.state = JobState::kDone;
  return result;
}

}  // namespace elrr::svc
