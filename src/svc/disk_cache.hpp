#pragma once

/// \file disk_cache.hpp
/// Crash-safe persistent result cache: the on-disk layer under the
/// scheduler's in-memory cross-job result cache. Entries are
/// content-addressed by the scheduler's canonical job key (circuit
/// content + delays + mode + result-affecting FlowOptions), so repeated
/// traffic is served bit-identically across process restarts -- the
/// ROADMAP's `elrr serve` daemon restarts without losing its warm cache.
///
/// Durability model (the part chaos tests exercise):
///  * **Atomic visibility**: an entry is written to a process+counter
///    unique `*.tmp` file and renamed into place -- readers only ever see
///    no entry or a complete entry, never a torn one, and a crash (or the
///    `disk_cache.store` fail point) between write and rename leaves only
///    a `*.tmp` orphan that the next construction sweeps.
///  * **Checksummed reads**: every entry carries an FNV-1a checksum over
///    its header+key+payload; a truncated, bit-flipped or
///    wrong-magic/wrong-version file is a *miss* (counted `corrupt`,
///    unlinked) -- never a wrong answer, never an exception.
///  * **Containment**: load() and store() never throw; any filesystem
///    error (including injected ones) degrades to miss / dropped store
///    and bumps a counter. The cache is an accelerator, not a
///    correctness dependency.
///
/// Layout: one file per entry, `<fnv1a64(key) hex>.entry`, holding the
/// full key (verified on load, so a 64-bit filename collision reads as a
/// miss) and an opaque payload. Byte-capped like the in-memory LRU:
/// past `cap_bytes` the oldest-mtime entries are unlinked after each
/// store; a hit bumps the entry's mtime (LRU by filesystem timestamps --
/// approximate across restarts, exact enough for a cache).

#include <cstdint>
#include <optional>
#include <string>

#include "svc/scheduler.hpp"

namespace elrr::svc {

struct DiskCacheOptions {
  std::string dir;            ///< entry directory (created if absent)
  std::size_t cap_bytes = 0;  ///< total entry bytes; 0 = unbounded
};

struct DiskCacheStats {
  std::size_t entries = 0;  ///< entry files currently on disk
  std::size_t bytes = 0;    ///< their total size
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t corrupt = 0;    ///< entries rejected (checksum/format) + unlinked
  std::uint64_t stores = 0;     ///< entries durably written
  std::uint64_t store_errors = 0;  ///< stores dropped (IO fault, fail point)
  std::uint64_t evictions = 0;  ///< entries unlinked over the byte cap
};

/// The persistent layer. Thread-safe: scheduler workers load/store
/// concurrently under an internal mutex (IO included -- simplicity over
/// parallel IO; entries are a few KiB).
class DiskCache {
 public:
  /// Creates `options.dir` if needed, sweeps `*.tmp` orphans of crashed
  /// stores, and takes inventory of existing entries. Throws
  /// InvalidInputError when the directory cannot be created -- a
  /// *configured* cache that cannot work is a user error; everything
  /// after construction is contained.
  explicit DiskCache(const DiskCacheOptions& options);

  /// The payload stored under `key`, or nullopt (absent / torn / corrupt
  /// / IO fault -- corrupt entries are unlinked so they are recomputed,
  /// not retried). Never throws.
  std::optional<std::string> load(const std::string& key);

  /// Durably stores `payload` under `key` (overwrites). Failures are
  /// dropped silently into `store_errors`. Never throws.
  void store(const std::string& key, const std::string& payload);

  DiskCacheStats stats() const;
  const std::string& dir() const { return dir_; }

 private:
  std::string entry_path(const std::string& key) const;
  void evict_over_cap_locked();

  std::string dir_;
  std::size_t cap_bytes_ = 0;
  mutable std::mutex mutex_;
  DiskCacheStats stats_;
  std::uint64_t tmp_counter_ = 0;
};

/// Bit-exact binary serialization of a completed job's result-affecting
/// fields (mode, scored numbers, the full CircuitResult including every
/// candidate row). `id`, `name`, `state`, `error` and the per-run
/// JobStats are schedule/job-local and excluded -- the scheduler fills
/// them when serving, exactly like an in-memory cross-job cache hit.
std::string serialize_job_result(const JobResult& result);

/// Inverse of serialize_job_result; nullopt on any malformed payload
/// (wrong version, truncation, trailing bytes) -- the caller treats that
/// as a cache miss.
std::optional<JobResult> deserialize_job_result(const std::string& payload);

}  // namespace elrr::svc
