#pragma once

/// \file figures.hpp
/// The running example of the paper (Figures 1(a), 1(b) and 2) as ready
/// made RRGs. Node order is fixed as {m, F1, F2, F3, f}; F1..F3 have unit
/// combinational delay, m and f have zero delay; the multiplexer m selects
/// its top input (the 3-EB channel from f in Figure 1(a)) with probability
/// alpha and the bottom channel with probability 1-alpha.
///
/// Ground truth used by tests and benches:
///  * fig. 1(a): tau = 3, Theta = 1, xi = 3;
///  * fig. 1(b): tau = 1; late Theta = 1/3; early Theta = 0.491 (alpha=.5)
///    and 0.719 (alpha=.9) [Markov analysis, Section 1.4];
///  * fig. 2:    tau = 1; early Theta = 1/(3-2alpha); two anti-tokens on
///    the bottom f->m channel; reached from 1(a) by the retiming
///    r(m)=-2, r(F1)=-2, r(F2)=-1, r(F3)=r(f)=0 plus recycling.

#include "core/rrg.hpp"

namespace elrr {
namespace figures {

/// Node indices within the figure RRGs.
inline constexpr NodeId kM = 0;
inline constexpr NodeId kF1 = 1;
inline constexpr NodeId kF2 = 2;
inline constexpr NodeId kF3 = 3;
inline constexpr NodeId kF = 4;

/// Edge indices within the figure RRGs.
inline constexpr EdgeId kMF1 = 0;
inline constexpr EdgeId kF1F2 = 1;
inline constexpr EdgeId kF2F3 = 2;
inline constexpr EdgeId kF3F = 3;
inline constexpr EdgeId kTop = 4;     ///< f -> m, alpha channel
inline constexpr EdgeId kBottom = 5;  ///< f -> m, (1-alpha) channel

/// Figure 1(a): one token on m->F1, three tokens in three EBs on the top
/// f->m channel, everything else combinational.
Rrg figure1a(double alpha = 0.5, bool early = true);

/// Figure 1(b): figure 1(a) after one retiming move and two bubbles;
/// cycle time 1.
Rrg figure1b(double alpha = 0.5, bool early = true);

/// Figure 2: the optimal retiming & recycling configuration with early
/// evaluation; two anti-tokens on the bottom channel.
Rrg figure2(double alpha = 0.9, bool early = true);

/// Exact throughput of figure2 from the paper's Markov analysis.
inline double figure2_throughput(double alpha) { return 1.0 / (3.0 - 2.0 * alpha); }

}  // namespace figures
}  // namespace elrr
