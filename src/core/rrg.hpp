#pragma once

/// \file rrg.hpp
/// The Retiming & Recycling Graph (Definition 2.1 of the paper):
/// a multigraph whose nodes are combinational blocks (simple or
/// early-evaluation) with delays beta, and whose edges carry
///  * R0 tokens (negative = anti-tokens),
///  * R >= max(R0, 0) elastic buffers (EBs),
///  * gamma, the branch-selection probability when the target node
///    evaluates early.
///
/// An Rrg instance *is* one configuration; RrConfig is a token/buffer
/// overlay (an "RC" in the paper) produced by the optimizer, and
/// `apply_config` materializes it.

#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace elrr {

using graph::Digraph;
using graph::EdgeId;
using graph::NodeId;

enum class NodeKind { kSimple, kEarly };

/// Variable-latency ("telescopic") behaviour of a node -- the extension
/// the paper lists as future work (Section 6). A telescopic unit meets
/// the clock on its *fast* path with probability `fast_prob`; otherwise
/// the operation needs `slow_extra` additional cycles during which the
/// unit is busy and its outputs are withheld. `fast_prob == 1` (the
/// default) is an ordinary fixed-latency node.
struct Telescopic {
  double fast_prob = 1.0;
  int slow_extra = 0;

  bool enabled() const { return fast_prob < 1.0 && slow_extra > 0; }
  /// Expected extra service latency per firing: (1 - p) * slow_extra.
  double expected_extra() const {
    return enabled() ? (1.0 - fast_prob) * slow_extra : 0.0;
  }

  bool operator==(const Telescopic&) const = default;
};

/// Retiming & Recycling Graph.
class Rrg {
 public:
  /// Adds a combinational block. `delay` is beta(n) >= 0.
  NodeId add_node(std::string name, double delay,
                  NodeKind kind = NodeKind::kSimple);

  /// Adds a channel u -> v carrying `tokens` (R0, may be negative) in
  /// `buffers` EBs (R). `gamma` is the selection probability of this input
  /// if v evaluates early (ignored otherwise).
  EdgeId add_edge(NodeId u, NodeId v, int tokens, int buffers,
                  double gamma = 1.0);

  const Digraph& graph() const { return g_; }
  std::size_t num_nodes() const { return g_.num_nodes(); }
  std::size_t num_edges() const { return g_.num_edges(); }

  const std::string& name(NodeId n) const { return names_[n]; }
  double delay(NodeId n) const { return delays_[n]; }
  NodeKind kind(NodeId n) const { return kinds_[n]; }
  bool is_early(NodeId n) const { return kinds_[n] == NodeKind::kEarly; }

  int tokens(EdgeId e) const { return tokens_[e]; }
  int buffers(EdgeId e) const { return buffers_[e]; }
  double gamma(EdgeId e) const { return gammas_[e]; }

  void set_tokens(EdgeId e, int tokens) { tokens_[e] = tokens; }
  void set_buffers(EdgeId e, int buffers) { buffers_[e] = buffers; }
  void set_gamma(EdgeId e, double gamma) { gammas_[e] = gamma; }
  void set_kind(NodeId n, NodeKind kind) { kinds_[n] = kind; }
  void set_delay(NodeId n, double delay) { delays_[n] = delay; }

  const Telescopic& telescopic(NodeId n) const { return telescopic_[n]; }
  bool is_telescopic(NodeId n) const { return telescopic_[n].enabled(); }
  /// Marks node n as telescopic: fast with probability `fast_prob`
  /// (in (0, 1]), otherwise busy for `slow_extra` further cycles.
  void set_telescopic(NodeId n, double fast_prob, int slow_extra);
  /// True if any node is telescopic.
  bool has_telescopic() const;
  /// Expected extra service latency of node n ((1-p) * slow_extra).
  double service(NodeId n) const { return telescopic_[n].expected_extra(); }

  /// beta_max: the largest single-node delay (the absolute lower bound on
  /// any achievable cycle time, and MIN_EFF_CYC's starting tau).
  double max_delay() const;

  /// Sum of all combinational delays; used as the big-M constant tau* in
  /// the path constraints (Lemma 2.1).
  double total_delay() const;

  /// Checks Definition 2.1: non-negative finite delays; R >= 0 and
  /// R >= R0 on every edge; early nodes have >= 2 inputs and input
  /// probabilities in (0, 1] summing to 1; liveness (every directed cycle
  /// has positive token sum). Throws InvalidInputError with a message
  /// naming the offending entity.
  void validate() const;

  /// Liveness alone: no directed cycle with token sum <= 0.
  bool is_live(std::vector<EdgeId>* dead_cycle = nullptr) const;

  /// Graphviz rendering (early nodes as trapezia; EBs/tokens on edges).
  std::string to_dot() const;

 private:
  Digraph g_;
  std::vector<std::string> names_;
  std::vector<double> delays_;
  std::vector<NodeKind> kinds_;
  std::vector<Telescopic> telescopic_;
  std::vector<int> tokens_;
  std::vector<int> buffers_;
  std::vector<double> gammas_;
};

/// A retiming & recycling configuration (Definition 2.7): per-edge token
/// and buffer counts for some base RRG.
struct RrConfig {
  std::vector<int> tokens;   ///< R0'
  std::vector<int> buffers;  ///< R'

  bool operator==(const RrConfig& other) const = default;
};

/// The identity configuration of an RRG.
RrConfig initial_config(const Rrg& rrg);

/// Copy of `rrg` with the configuration's tokens/buffers installed.
/// Validates the result.
Rrg apply_config(const Rrg& rrg, const RrConfig& config);

/// Applies a retiming vector r (Definition 2.6):
/// R0'(e) = R0(e) + r(v) - r(u); buffers are set to max(R0'(e), R(e), 0)
/// when `grow_buffers` (never drops below the original count), or to
/// max(R0'(e), 0) otherwise (minimal legal buffering).
RrConfig apply_retiming(const Rrg& rrg, const std::vector<int>& r,
                        bool grow_buffers = false);

/// Checks an RC against its base RRG without materializing it:
/// R' >= 0, R' >= R0', cycle token sums preserved & positive, i.e. the RC
/// is reachable by retiming + recycling. Returns false and fills `why`.
bool validate_config(const Rrg& rrg, const RrConfig& config,
                     std::string* why = nullptr);

/// Cycle time (Definition 2.3): maximum delay over combinational paths
/// (paths through edges with R = 0).
struct CycleTimeResult {
  bool valid = false;  ///< false if a zero-buffer cycle exists
  double tau = 0.0;
  std::vector<NodeId> critical_path;
};
CycleTimeResult cycle_time(const Rrg& rrg);

/// Effective cycle time xi = tau / theta (Definition 2.5).
double effective_cycle_time(double tau, double theta);

/// Hard ceiling on the achievable throughput imposed by telescopic nodes:
/// a unit whose expected busy period is 1 + (1-p) * slow_extra cycles per
/// firing cannot fire more often than once per that period. Returns
/// min(1, min_n 1 / (1 + service(n))); exactly 1 when nothing is
/// telescopic.
double throughput_cap(const Rrg& rrg);

}  // namespace elrr
