#include "core/analysis.hpp"

#include <algorithm>

#include "core/tgmg.hpp"
#include "graph/cycle_ratio.hpp"
#include "graph/topo.hpp"
#include "support/error.hpp"

namespace elrr {

double late_eval_throughput(const Rrg& rrg) {
  rrg.validate();
  // Acyclic graphs are not token limited.
  const bool acyclic =
      graph::topological_order(rrg.graph(), [](EdgeId) { return true; })
          .has_value();
  if (acyclic) return 1.0;

  std::vector<std::int64_t> cost, time;
  cost.reserve(rrg.num_edges());
  time.reserve(rrg.num_edges());
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    cost.push_back(rrg.tokens(e));
    time.push_back(rrg.buffers(e));
  }
  const auto mcr = graph::min_cycle_ratio(rrg.graph(), cost, time);
  return std::min(1.0, mcr.ratio);
}

RcEvaluation evaluate_config(const Rrg& rrg, const RrConfig& config) {
  return evaluate_rrg(apply_config(rrg, config));
}

RcEvaluation evaluate_rrg(const Rrg& rrg) {
  RcEvaluation eval;
  const CycleTimeResult ct = cycle_time(rrg);
  ELRR_ASSERT(ct.valid, "live RRG cannot have a zero-buffer cycle");
  eval.tau = ct.tau;
  eval.theta_lp = throughput_upper_bound(rrg);
  eval.xi_lp = effective_cycle_time(eval.tau, eval.theta_lp);
  return eval;
}

}  // namespace elrr
