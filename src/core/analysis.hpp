#pragma once

/// \file analysis.hpp
/// Configuration-level performance metrics:
///  * exact late-evaluation throughput (marked-graph minimum cycle ratio),
///  * LP throughput bound (via tgmg.hpp),
///  * combined tau / theta_lp / xi_lp evaluation of an RC.

#include "core/rrg.hpp"

namespace elrr {

/// Exact steady-state throughput of the RRG *ignoring early evaluation*
/// (all nodes late): min(1, min cycle ratio of tokens/buffers).
/// For an acyclic RRG nothing limits the token rate and the result is 1.
double late_eval_throughput(const Rrg& rrg);

/// tau, theta_lp and xi_lp of one configuration (Table 1's columns).
struct RcEvaluation {
  double tau = 0.0;
  double theta_lp = 0.0;
  double xi_lp = 0.0;
};

/// Evaluates `config` against `rrg` (validates it first).
RcEvaluation evaluate_config(const Rrg& rrg, const RrConfig& config);

/// Evaluates the RRG's own configuration.
RcEvaluation evaluate_rrg(const Rrg& rrg);

}  // namespace elrr
