#include "core/opt.hpp"

#include <algorithm>
#include <cmath>

#include "core/tgmg.hpp"
#include "graph/bellman_ford.hpp"
#include "graph/scc.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace elrr {

namespace {

/// Which quantity is the decision variable (the other one is a constant).
enum class Objective { kMinTau, kMinX };

/// One row whose lower bound depends on the budget x (kMinTau folds
/// "x * tokens" into the right-hand side): lo(x) = lo_base - x * coef.
/// Recording these is what lets a session re-target the model for a new
/// x by moving a handful of row bounds instead of rebuilding it.
struct XRow {
  int row = -1;
  double lo_base = 0.0;
  double coef = 0.0;
};

/// Column layout of the RR MILP, built once per solve.
struct RrModel {
  lp::Model model;
  std::vector<int> buf_col;   ///< R'(e), integer
  std::vector<int> r_col;     ///< retiming (continuous; integrality free)
  int tau_col = -1;           ///< only for kMinTau
  int x_col = -1;             ///< only for kMinX
  std::vector<XRow> x_rows;   ///< kMinTau rows parameterized by x
};

/// Builds the MILP of Section 4 in the sigma-tilde form (see opt.hpp).
/// `x_fixed` is used when objective == kMinTau; `tau_fixed` when kMinX
/// (with `x_upper` a valid upper bound on the optimal x).
RrModel build_rr_model(const Rrg& rrg, Objective objective, double x_fixed,
                       double tau_fixed, double x_upper) {
  const Digraph& g = rrg.graph();
  const double tau_star = std::max(rrg.total_delay(), 1e-9);  // big-M
  const double beta_max = rrg.max_delay();

  RrModel rr;
  lp::Model& m = rr.model;
  m.set_sense(lp::Sense::kMinimize);

  if (objective == Objective::kMinTau) {
    rr.tau_col = m.add_col(beta_max, tau_star, 1.0, false, "tau");
  } else if (objective == Objective::kMinX) {
    rr.x_col = m.add_col(1.0, x_upper, 1.0, false, "x");
  }

  // Buffer counts R'(e): the integer decisions.
  rr.buf_col.reserve(rrg.num_edges());
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    rr.buf_col.push_back(
        m.add_col(0.0, lp::kInf, 0.0, true, "R_" + std::to_string(e)));
  }
  // Retiming potentials (continuous; see recover_retiming).
  rr.r_col.reserve(rrg.num_nodes());
  for (NodeId n = 0; n < rrg.num_nodes(); ++n) {
    rr.r_col.push_back(
        m.add_col(-lp::kInf, lp::kInf, 0.0, false, "r_" + rrg.name(n)));
  }
  m.set_col_bounds(rr.r_col[0], 0.0, 0.0);

  // Arrival times t(n) in [beta(n), tau]; for kMinTau the upper bound is a
  // row against the tau variable.
  std::vector<int> t_col(rrg.num_nodes());
  for (NodeId n = 0; n < rrg.num_nodes(); ++n) {
    const double hi =
        objective == Objective::kMinTau ? tau_star : tau_fixed;
    if (hi < rrg.delay(n)) {
      // tau below a node delay: trivially infeasible; encode it honestly.
      t_col[n] = m.add_col(rrg.delay(n), rrg.delay(n), 0.0, false);
      m.add_row(1.0, 1.0, {{t_col[n], 0.0}}, "infeasible_tau");
      continue;
    }
    t_col[n] = m.add_col(rrg.delay(n), hi, 0.0, false, "t_" + rrg.name(n));
    if (objective == Objective::kMinTau) {
      m.add_row(-lp::kInf, 0.0, {{t_col[n], 1.0}, {rr.tau_col, -1.0}},
                "clk_" + rrg.name(n));
    }
  }

  // Path constraints (Lemma 2.1, compact node-arrival form):
  //   t(v) >= t(u) + beta(v) - tau* R'(e).
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    const NodeId u = g.src(e);
    const NodeId v = g.dst(e);
    m.add_row(rrg.delay(v), lp::kInf,
              {{t_col[v], 1.0}, {t_col[u], -1.0}, {rr.buf_col[e], tau_star}},
              "path_" + std::to_string(e));
  }

  // Chain cuts: for a combinational chain with delay sum S over edges E',
  //   tau + S * sum_{e in E'} R'(e) >= S
  // is valid for every integer solution (any buffer kills the chain;
  // none means tau >= S) and dramatically tightens the LP relaxation,
  // whose big-M path rows otherwise admit tiny fractional buffers. Cuts
  // are emitted for every edge (2-node chains) and for adjacent edge
  // pairs (3-node chains), capped to keep dense models small.
  const auto add_chain_cut = [&](double delay_sum,
                                 std::vector<lp::ColEntry> buf_entries,
                                 const std::string& name) {
    for (auto& entry : buf_entries) entry.coef = delay_sum;
    if (objective == Objective::kMinTau) {
      buf_entries.push_back({rr.tau_col, 1.0});
      m.add_row(delay_sum, lp::kInf, std::move(buf_entries), name);
    } else {
      m.add_row(delay_sum - tau_fixed, lp::kInf, std::move(buf_entries),
                name);
    }
  };
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    const double s = rrg.delay(g.src(e)) + rrg.delay(g.dst(e));
    if (s <= 0.0) continue;
    add_chain_cut(s, {{rr.buf_col[e], 0.0}}, "cut2_" + std::to_string(e));
  }
  const std::size_t cut3_cap = 6 * rrg.num_edges();
  std::size_t cut3_count = 0;
  for (NodeId v = 0; v < rrg.num_nodes() && cut3_count < cut3_cap; ++v) {
    for (EdgeId e_in : g.in_edges(v)) {
      for (EdgeId e_out : g.out_edges(v)) {
        if (cut3_count >= cut3_cap) break;
        if (e_in == e_out) continue;  // self loop pairs add nothing
        const double s = rrg.delay(g.src(e_in)) + rrg.delay(v) +
                         rrg.delay(g.dst(e_out));
        if (s <= 0.0) continue;
        add_chain_cut(s, {{rr.buf_col[e_in], 0.0}, {rr.buf_col[e_out], 0.0}},
                      "cut3_" + std::to_string(cut3_count));
        ++cut3_count;
      }
    }
  }

  // Retiming coupling: R'(e) + r(u) - r(v) >= R0(e).
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    const NodeId u = g.src(e);
    const NodeId v = g.dst(e);
    std::vector<lp::ColEntry> entries{{rr.buf_col[e], 1.0}};
    if (u != v) {
      entries.push_back({rr.r_col[u], 1.0});
      entries.push_back({rr.r_col[v], -1.0});
    }
    m.add_row(static_cast<double>(rrg.tokens(e)), lp::kInf,
              std::move(entries), "rc_" + std::to_string(e));
  }

  // Throughput constraints (5)-(10) in sigma-tilde form; "x * R0(e)" is a
  // coefficient on the x column (kMinX) or folded into the bound (kMinTau).
  std::vector<int> sigma(rrg.num_nodes());
  for (NodeId n = 0; n < rrg.num_nodes(); ++n) {
    sigma[n] = m.add_col(-lp::kInf, lp::kInf, 0.0, false,
                         "sg_" + rrg.name(n));
  }
  m.set_col_bounds(sigma[0], 0.0, 0.0);

  // Per early node: the s firing count; per early input edge: auxR, aux0.
  std::vector<int> s_col(rrg.num_nodes(), -1);
  std::vector<int> auxr_col(rrg.num_edges(), -1);
  std::vector<int> aux0_col(rrg.num_edges(), -1);
  for (NodeId n = 0; n < rrg.num_nodes(); ++n) {
    if (!rrg.is_early(n)) continue;
    s_col[n] = m.add_col(-lp::kInf, lp::kInf, 0.0, false,
                         "ss_" + rrg.name(n));
    for (EdgeId e : g.in_edges(n)) {
      auxr_col[e] = m.add_col(-lp::kInf, lp::kInf, 0.0, false,
                              "ar_" + std::to_string(e));
      aux0_col[e] = m.add_col(-lp::kInf, lp::kInf, 0.0, false,
                              "a0_" + std::to_string(e));
    }
  }

  const auto add_with_x = [&](double lo, std::vector<lp::ColEntry> entries,
                              double x_coef_tokens, const std::string& name) {
    // Adds a row  lo <= entries + x * x_coef_tokens  treating x as either
    // the x column (kMinX) or the constant x_fixed (kMinTau).
    if (objective == Objective::kMinX) {
      if (x_coef_tokens != 0.0) entries.push_back({rr.x_col, x_coef_tokens});
      rr.model.add_row(lo, lp::kInf, std::move(entries), name);
    } else {
      const int row = rr.model.add_row(lo - x_fixed * x_coef_tokens,
                                       lp::kInf, std::move(entries), name);
      if (x_coef_tokens != 0.0) rr.x_rows.push_back({row, lo, x_coef_tokens});
    }
  };

  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    const NodeId u = g.src(e);
    const NodeId v = g.dst(e);
    if (!rrg.is_early(v)) {
      // (5): x R0(e) + sg(u) - sg(v) - R'(e) >= service(v).
      // NOTE: the paper prints "sigma(v) - sigma(u)" in (5), but the LP (4)
      // it is derived from has mhat(e) = m0(e) + sigma(u) - sigma(v), and
      // (6)-(10) follow that orientation. With only simple nodes the flip
      // is harmless (sigma is free, so sigma -> -sigma maps one system to
      // the other), but mixed with (6)-(10) it is unsound; we use the
      // (4)-consistent orientation. See DESIGN.md, "reproduction notes".
      // A telescopic consumer adds its expected extra service latency
      // (1-p) * slow_extra to the edge's pipeline latency.
      std::vector<lp::ColEntry> entries{{rr.buf_col[e], -1.0}};
      if (u != v) {
        entries.push_back({sigma[u], 1.0});
        entries.push_back({sigma[v], -1.0});
      }
      add_with_x(rrg.service(v), std::move(entries),
                 static_cast<double>(rrg.tokens(e)),
                 "thr5_" + std::to_string(e));
    } else {
      // (6): sg(u) - auxR(e) - R'(e) >= 0.
      m.add_row(0.0, lp::kInf,
                {{sigma[u], 1.0}, {auxr_col[e], -1.0}, {rr.buf_col[e], -1.0}},
                "thr6_" + std::to_string(e));
      // (10): x R0(e) + auxR(e) - aux0(e) >= 0.
      add_with_x(0.0, {{auxr_col[e], 1.0}, {aux0_col[e], -1.0}},
                 static_cast<double>(rrg.tokens(e)),
                 "thr10_" + std::to_string(e));
      // (9): s(v) - aux0(e) >= 0.
      m.add_row(0.0, lp::kInf, {{s_col[v], 1.0}, {aux0_col[e], -1.0}},
                "thr9_" + std::to_string(e));
    }
  }
  for (NodeId n = 0; n < rrg.num_nodes(); ++n) {
    if (!rrg.is_early(n)) continue;
    // (7): sum_e gamma(e) aux0(e) - sg(n) >= service(n)  (gammas sum to
    // one; the paper's right-hand side is 0 because it has no telescopic
    // nodes -- delta(n) = 0 for every early node).
    std::vector<lp::ColEntry> entries;
    for (EdgeId e : g.in_edges(n)) {
      entries.push_back({aux0_col[e], rrg.gamma(e)});
    }
    entries.push_back({sigma[n], -1.0});
    m.add_row(rrg.service(n), lp::kInf, std::move(entries),
              "thr7_" + rrg.name(n));
    // (8): x + sg(n) - s(n) >= 1.
    add_with_x(1.0, {{sigma[n], 1.0}, {s_col[n], -1.0}}, 1.0,
               "thr8_" + rrg.name(n));
  }

  // Busy throttle of telescopic *simple* nodes (early ones are throttled
  // through (7)-(8) above): a unit-delay self-loop with one token in
  // sigma-tilde form, collapsing to x >= 1 + service(n).
  for (NodeId n = 0; n < rrg.num_nodes(); ++n) {
    if (!rrg.is_telescopic(n) || rrg.is_early(n)) continue;
    const int tl = m.add_col(-lp::kInf, lp::kInf, 0.0, false,
                             "tl_" + rrg.name(n));
    m.add_row(1.0, lp::kInf, {{sigma[n], 1.0}, {tl, -1.0}},
              "tlf_" + rrg.name(n));
    add_with_x(rrg.service(n), {{tl, 1.0}, {sigma[n], -1.0}}, 1.0,
               "tlb_" + rrg.name(n));
  }

  return rr;
}

/// Shared MILP postlude: status mapping, buffer extraction, retiming
/// recovery and config validation (identical for the stateless and the
/// session path -- bit-identity of the walk hinges on that).
RcSolveResult finish_rr(const Rrg& rrg, const std::vector<int>& buf_col,
                        const lp::MilpResult& milp) {
  RcSolveResult result;
  if (!milp.has_solution()) {
    // `exact` on an infeasible answer means the negative verdict is
    // proven: either genuine infeasibility or a futile-bound proof (no
    // solution as good as the cutoff), as opposed to a budget running out
    // before any incumbent appeared.
    result.exact = milp.status == lp::MilpStatus::kInfeasible ||
                   milp.status == lp::MilpStatus::kFutile;
    return result;
  }
  result.feasible = true;
  result.exact = milp.status == lp::MilpStatus::kOptimal;
  result.objective = milp.objective;

  std::vector<int> buffers(rrg.num_edges());
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    buffers[e] =
        static_cast<int>(std::llround(milp.x[static_cast<std::size_t>(buf_col[e])]));
    ELRR_ASSERT(buffers[e] >= 0, "negative buffer count from MILP");
  }
  const std::vector<int> r = recover_retiming(rrg, buffers);
  const RrConfig config = [&] {
    RrConfig c;
    c.buffers = buffers;
    c.tokens.resize(rrg.num_edges());
    const Digraph& g = rrg.graph();
    for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
      c.tokens[e] = rrg.tokens(e) + r[g.dst(e)] - r[g.src(e)];
    }
    return c;
  }();
  std::string why;
  ELRR_ASSERT(validate_config(rrg, config, &why),
              "MILP produced an invalid RC: ", why);
  result.config = config;
  return result;
}

RcSolveResult solve_rr(const Rrg& rrg, Objective objective, double x_fixed,
                       double tau_fixed, double x_upper,
                       const OptOptions& options) {
  rrg.validate();
  ELRR_REQUIRE(graph::is_strongly_connected(rrg.graph()),
               "the optimizer requires a strongly connected RRG "
               "(extract the largest SCC first)");
  if (objective != Objective::kMinX) {
    ELRR_REQUIRE(x_fixed >= 1.0, "throughput target requires x >= 1, got ",
                 x_fixed);
  }

  RrModel rr = build_rr_model(rrg, objective, x_fixed, tau_fixed, x_upper);
  const lp::MilpResult milp = lp::solve_milp(rr.model, options.milp);
  return finish_rr(rrg, rr.buf_col, milp);
}

}  // namespace

namespace detail {

/// The walk's persistent MILP state: the x-parameterized MIN_TAU model
/// built once per circuit (at x = 0, so every recorded lo_base is the
/// unshifted bound) plus the lp::MilpSession holding the warm basis.
struct WalkMilp {
  std::vector<int> buf_col;
  std::vector<XRow> x_rows;
  lp::MilpSession session;

  WalkMilp(RrModel&& rr, const lp::MilpOptions& milp_options)
      : buf_col(std::move(rr.buf_col)),
        x_rows(std::move(rr.x_rows)),
        session(std::move(rr.model), milp_options) {}
};

}  // namespace detail

namespace {

/// MIN_CYC(x) through the walk's session: re-target the x-dependent row
/// bounds (the exact same "lo - x * coef" expression solve_rr's builder
/// evaluates, so the parameterized model is bit-identical to a freshly
/// built one), thread the step's cutoffs/budget through, solve.
RcSolveResult solve_rr_session(const Rrg& rrg, detail::WalkMilp& wm,
                               double x, const lp::MilpOptions& step_milp) {
  ELRR_REQUIRE(x >= 1.0, "throughput target requires x >= 1, got ", x);
  for (const XRow& xr : wm.x_rows) {
    wm.session.set_row_bounds(xr.row, xr.lo_base - x * xr.coef, lp::kInf);
  }
  wm.session.set_cutoffs(step_milp.target_obj, step_milp.futile_bound);
  wm.session.set_time_limit(step_milp.time_limit_s);
  return finish_rr(rrg, wm.buf_col, wm.session.solve());
}

/// MAX_THR(tau) on an already-rewritten RRG. With a session (`wm`), the
/// bisection's decision probes -- which are MIN_CYC solves of the same
/// x-parameterized model -- run through it; the direct min-x attempt
/// keeps its own cold solve (its model depends on tau structurally, so
/// no basis carries over).
RcSolveResult max_thr_impl(const Rrg& rrg, double tau,
                           const OptOptions& options, detail::WalkMilp* wm) {
  rrg.validate();
  if (tau < rrg.max_delay() - 1e-9) {
    return {};  // a single node's delay already exceeds tau
  }

  // Feasible fallback: one buffer more than tokens everywhere pipelines
  // every edge, meeting any tau >= beta_max; its LP bound caps x.
  RrConfig fallback = initial_config(rrg);
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    fallback.buffers[e] = std::max(rrg.tokens(e), 0) + 1;
  }
  const double theta_fb = evaluate_config(rrg, fallback).theta_lp;
  ELRR_ASSERT(theta_fb > 0.0, "fallback configuration has zero throughput");
  const double x_upper = 1.0 / theta_fb + 1.0;

  // First attempt: the direct min-x MILP (the paper's formulation) on a
  // slice of the budget. Hard instances starve it of incumbents, in which
  // case we fall back to bisection below.
  OptOptions slice = options;
  slice.treat_all_simple = false;
  slice.milp.time_limit_s =
      options.milp.time_limit_s > 0
          ? std::min(options.milp.time_limit_s / 3.0, 5.0)
          : 5.0;
  RcSolveResult best;
  best.feasible = true;
  best.exact = true;
  best.config = fallback;
  double hi = 1.0 / theta_fb;
  {
    RcSolveResult direct =
        solve_rr(rrg, Objective::kMinX, 0.0, tau, x_upper, slice);
    if (direct.feasible && direct.exact) return direct;
    if (direct.feasible) {
      // Unproven incumbent: keep it as the bisection's starting witness.
      best.config = direct.config;
      hi = 1.0 / evaluate_config(rrg, direct.config).theta_lp;
    }
  }

  // Bisection on x. Each probe solves MIN_CYC(x) as a *decision* problem
  // using the MILP cutoffs: stop as soon as some configuration reaches
  // cycle time tau (yes) or as soon as the proven bound exceeds tau (no).
  // Feasibility is monotone in x, and each yes-witness's own LP bound
  // snaps the upper end down to an achieved throughput, so convergence
  // takes only a handful of probes (configurations are discrete).
  OptOptions probe = options;
  probe.treat_all_simple = false;
  probe.milp.target_obj = tau + 1e-9;
  probe.milp.futile_bound = tau + 1e-7;
  // Each probe is a decision problem with early-exit cutoffs; verdicts
  // that outlive this budget are conservatively "no" and drop exactness,
  // so a short leash is safe and keeps the bisection responsive.
  probe.milp.time_limit_s =
      options.milp.time_limit_s > 0
          ? std::min(options.milp.time_limit_s / 6.0, 3.0)
          : 3.0;
  enum class Verdict { kYes, kNo, kUnknownNo };
  const auto probe_at = [&](double x, RcSolveResult* witness) {
    RcSolveResult r =
        wm != nullptr
            ? solve_rr_session(rrg, *wm, x, probe.milp)
            : solve_rr(rrg, Objective::kMinTau, x, 0.0, 0.0, probe);
    if (r.feasible && r.objective <= tau + 1e-6) {
      *witness = r;
      return Verdict::kYes;  // the witness itself proves the yes
    }
    if (r.exact) {
      return Verdict::kNo;  // proven: min cycle time at this x exceeds tau
    }
    return Verdict::kUnknownNo;  // budget ran out; conservatively "no"
  };

  // Theta = 1 short-circuit: the most common endpoint of the Pareto walk.
  {
    RcSolveResult witness;
    const Verdict at_one = probe_at(1.0, &witness);
    if (at_one == Verdict::kYes) {
      witness.objective = 1.0;
      return witness;
    }
    best.exact &= at_one == Verdict::kNo;
  }

  double lo = 1.0;
  constexpr double kTol = 1e-7;
  constexpr int kMaxProbes = 30;
  for (int probes = 0;
       hi - lo > kTol * std::max(1.0, hi) && probes < kMaxProbes;
       ++probes) {
    const double mid = 0.5 * (lo + hi);
    RcSolveResult witness;
    const Verdict v = probe_at(mid, &witness);
    if (v == Verdict::kYes) {
      best.config = witness.config;
      // Snap to the witness's actual LP bound (<= mid by construction).
      const double achieved = evaluate_config(rrg, witness.config).theta_lp;
      hi = std::min(mid, 1.0 / achieved);
    } else {
      best.exact &= v == Verdict::kNo;
      lo = mid;
    }
  }
  best.objective = hi;
  return best;
}

}  // namespace

Rrg as_all_simple(const Rrg& rrg) {
  Rrg out = rrg;
  for (NodeId n = 0; n < out.num_nodes(); ++n) {
    out.set_kind(n, NodeKind::kSimple);
  }
  return out;
}

std::vector<int> recover_retiming(const Rrg& rrg,
                                  const std::vector<int>& buffers) {
  ELRR_REQUIRE(buffers.size() == rrg.num_edges(), "buffer vector mismatch");
  std::vector<std::int64_t> w(rrg.num_edges());
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    w[e] = static_cast<std::int64_t>(buffers[e]) - rrg.tokens(e);
  }
  const auto sol = graph::solve_difference_constraints(rrg.graph(), w);
  ELRR_ASSERT(sol.feasible,
              "buffer counts do not support any retiming (R' < R0' on some "
              "cycle)");
  std::vector<int> r(rrg.num_nodes());
  for (NodeId n = 0; n < rrg.num_nodes(); ++n) {
    r[n] = static_cast<int>(sol.potential[n]);
  }
  return r;
}

RcSolveResult min_cyc(const Rrg& rrg, double x, const OptOptions& options) {
  if (options.treat_all_simple) {
    return solve_rr(as_all_simple(rrg), Objective::kMinTau, x, 0.0, 0.0,
                    options);
  }
  return solve_rr(rrg, Objective::kMinTau, x, 0.0, 0.0, options);
}

lp::Model build_min_cyc_model(const Rrg& input, double x,
                              const OptOptions& options) {
  const Rrg rrg = options.treat_all_simple ? as_all_simple(input) : input;
  rrg.validate();
  ELRR_REQUIRE(graph::is_strongly_connected(rrg.graph()),
               "the optimizer requires a strongly connected RRG "
               "(extract the largest SCC first)");
  ELRR_REQUIRE(x >= 1.0, "throughput target requires x >= 1, got ", x);
  return std::move(build_rr_model(rrg, Objective::kMinTau, x, 0.0, 0.0).model);
}

RcSolveResult max_thr(const Rrg& input, double tau,
                      const OptOptions& options) {
  const Rrg rrg = options.treat_all_simple ? as_all_simple(input) : input;
  return max_thr_impl(rrg, tau, options, nullptr);
}

std::vector<std::size_t> MinEffCycResult::k_best(std::size_t k) const {
  std::vector<std::size_t> order(points.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return points[a].xi_lp < points[b].xi_lp;
  });
  if (order.size() > k) order.resize(k);
  return order;
}

ParetoWalk::ParetoWalk(const Rrg& input, const OptOptions& options)
    : rrg_(options.treat_all_simple ? as_all_simple(input) : input),
      options_(options) {
  rrg_.validate();
  // From here on options_ carries the rewrite already applied.
  options_.treat_all_simple = false;
  ELRR_REQUIRE(options_.epsilon > 0.0, "epsilon must be positive");
  // Telescopic nodes cap the achievable throughput below 1; the walk
  // terminates at the cap instead of Theta = 1.
  cap_ = throughput_cap(rrg_);
  max_iters_ = static_cast<int>(std::ceil(1.0 / options_.epsilon)) + 4;
}

// Out of line: detail::WalkMilp is incomplete in the header.
ParetoWalk::~ParetoWalk() = default;

detail::WalkMilp& ParetoWalk::milp_session() {
  if (!milp_) {
    // Built once, at x = 0, so every x-dependent row records its
    // unshifted lo_base; solve_rr_session re-targets those bounds before
    // every solve, so the placeholder bounds never reach the solver.
    milp_ = std::make_unique<detail::WalkMilp>(
        build_rr_model(rrg_, Objective::kMinTau, 0.0, 0.0, 0.0),
        options_.milp);
    milp_->session.set_warm(options_.milp_warm);
    milp_->session.set_seed_incumbent(options_.milp_warm);
  }
  return *milp_;
}

lp::SessionStats ParetoWalk::milp_stats() const {
  return milp_ ? milp_->session.stats() : lp::SessionStats{};
}

ParetoPoint ParetoWalk::record(const RcSolveResult& solve) {
  all_exact_ &= solve.exact;
  ParetoPoint point;
  point.config = solve.config;
  point.exact = solve.exact;
  const RcEvaluation eval = evaluate_config(rrg_, solve.config);
  point.tau = eval.tau;
  point.theta_lp = eval.theta_lp;
  point.xi_lp = eval.xi_lp;
  // Deduplicate identical configurations (the walk revisits them when a
  // step lands on the previous incumbent); the emitted point is returned
  // either way so streaming callers see every step.
  for (const ParetoPoint& existing : points_) {
    if (existing.config == point.config) return point;
  }
  points_.push_back(point);
  return point;
}

void ParetoWalk::set_xi_hint(double xi_observed) {
  xi_hint_ =
      std::isfinite(xi_observed) && xi_observed > 0.0 ? xi_observed : 0.0;
}

std::optional<ParetoPoint> ParetoWalk::advance() {
  if (state_ == State::kIdentity) {
    // The identity configuration is itself a valid RC; recording it
    // guarantees the result is never worse than doing nothing even when
    // every MILP budget is exhausted (and it is the natural Theta = 1
    // endpoint the paper's walk finishes on).
    state_ = State::kFirstMaxThr;
    RcSolveResult identity;
    identity.feasible = true;
    identity.exact = true;
    identity.config = initial_config(rrg_);
    return record(identity);
  }
  if (state_ == State::kFirstMaxThr) {
    // tau = beta_max; RC = MAX_THR(tau).
    state_ = State::kStep;
    const RcSolveResult first =
        max_thr_impl(rrg_, rrg_.max_delay(), options_, &milp_session());
    ++milp_calls_;
    ELRR_ASSERT(first.feasible, "MAX_THR(beta_max) must be feasible");
    last_ = record(first);
    return last_;
  }
  while (state_ == State::kStep) {
    if (iter_ >= max_iters_ || last_.theta_lp >= cap_ - 1e-9) {
      state_ = State::kDone;
      break;
    }
    ++iter_;
    // Theta = Theta_lp(RC) + eps, monotonically increasing so the walk
    // always terminates even when a step lands on the same configuration.
    target_ = std::min(
        cap_, std::max(last_.theta_lp + options_.epsilon,
                       target_ + options_.epsilon));
    OptOptions step = options_;
    if (xi_hint_ > 0.0) {
      // Feedback pruning: only a configuration with tau <= xi * theta can
      // beat an observed effective cycle time xi at this step's theta
      // target. An incumbent that good ends the branch & bound early
      // (target_obj); a proof that none exists makes the step futile
      // (futile_bound) and the walk moves on to the next target. Same
      // cutoff discipline as max_thr's decision probes.
      const double beat = xi_hint_ * target_;
      step.milp.target_obj = beat + 1e-9;
      step.milp.futile_bound = beat + 1e-7;
    }
    const RcSolveResult mc =
        solve_rr_session(rrg_, milp_session(), 1.0 / target_, step.milp);
    ++milp_calls_;
    if (!mc.feasible) {
      if (xi_hint_ > 0.0 && mc.exact) {
        // Proven futile against the hint (or genuinely infeasible): the
        // step is dominated by what the caller already holds; skip it
        // and keep walking the theta targets.
        ++pruned_steps_;
        continue;
      }
      all_exact_ = false;
      state_ = State::kDone;
      break;
    }
    if (options_.polish) {
      const double tau_next = evaluate_config(rrg_, mc.config).tau;
      const RcSolveResult mt =
          max_thr_impl(rrg_, tau_next, options_, &milp_session());
      ++milp_calls_;
      if (!mt.feasible) {
        all_exact_ = false;
        state_ = State::kDone;
        break;
      }
      last_ = record(mt);
    } else {
      last_ = record(mc);
    }
    return last_;
  }
  return std::nullopt;
}

MinEffCycResult ParetoWalk::finish() const {
  MinEffCycResult result;
  result.points = points_;
  result.milp_calls = milp_calls_;
  result.all_exact = all_exact_;

  // Keep only non-dominated points (Definition 4.1), sorted by cycle time.
  std::sort(result.points.begin(), result.points.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              if (a.tau != b.tau) return a.tau < b.tau;
              return a.theta_lp > b.theta_lp;
            });
  std::vector<ParetoPoint> frontier;
  double best_theta = -1.0;
  for (const ParetoPoint& point : result.points) {
    if (point.theta_lp > best_theta + 1e-12) {
      frontier.push_back(point);
      best_theta = point.theta_lp;
    }
  }
  result.points = std::move(frontier);

  result.best_index = 0;
  for (std::size_t i = 1; i < result.points.size(); ++i) {
    if (result.points[i].xi_lp < result.points[result.best_index].xi_lp) {
      result.best_index = i;
    }
  }
  result.seconds = watch_.seconds();
  return result;
}

MinEffCycResult min_eff_cyc(const Rrg& input, const OptOptions& options) {
  // min_eff_cyc *is* a ParetoWalk replayed to completion -- the walk's
  // streaming contract (finish() == this function) holds by construction.
  ParetoWalk walk(input, options);
  while (walk.advance().has_value()) {
  }
  return walk.finish();
}

}  // namespace elrr
