#include "core/figures.hpp"

#include "support/error.hpp"

namespace elrr {
namespace figures {

namespace {

Rrg skeleton(double alpha, bool early) {
  ELRR_REQUIRE(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
  Rrg rrg;
  rrg.add_node("m", 0.0, early ? NodeKind::kEarly : NodeKind::kSimple);
  rrg.add_node("F1", 1.0);
  rrg.add_node("F2", 1.0);
  rrg.add_node("F3", 1.0);
  rrg.add_node("f", 0.0);
  return rrg;
}

}  // namespace

Rrg figure1a(double alpha, bool early) {
  Rrg rrg = skeleton(alpha, early);
  rrg.add_edge(kM, kF1, 1, 1);
  rrg.add_edge(kF1, kF2, 0, 0);
  rrg.add_edge(kF2, kF3, 0, 0);
  rrg.add_edge(kF3, kF, 0, 0);
  rrg.add_edge(kF, kM, 3, 3, alpha);
  rrg.add_edge(kF, kM, 0, 0, 1.0 - alpha);
  rrg.validate();
  return rrg;
}

Rrg figure1b(double alpha, bool early) {
  Rrg rrg = skeleton(alpha, early);
  rrg.add_edge(kM, kF1, 0, 0);
  rrg.add_edge(kF1, kF2, 1, 1);  // the retimed token (edge e3 in Fig. 3)
  rrg.add_edge(kF2, kF3, 0, 1);  // bubble
  rrg.add_edge(kF3, kF, 0, 0);
  rrg.add_edge(kF, kM, 3, 3, alpha);
  rrg.add_edge(kF, kM, 0, 1, 1.0 - alpha);  // bubble
  rrg.validate();
  return rrg;
}

Rrg figure2(double alpha, bool early) {
  Rrg rrg = skeleton(alpha, early);
  rrg.add_edge(kM, kF1, 1, 1);
  rrg.add_edge(kF1, kF2, 1, 1);
  rrg.add_edge(kF2, kF3, 1, 1);
  rrg.add_edge(kF3, kF, 0, 0);
  rrg.add_edge(kF, kM, 1, 1, alpha);
  rrg.add_edge(kF, kM, -2, 0, 1.0 - alpha);  // two anti-tokens
  rrg.validate();
  return rrg;
}

}  // namespace figures
}  // namespace elrr
