#pragma once

/// \file tgmg.hpp
/// Timed Guarded Marked Graphs (Definitions 3.1-3.3 of the paper) and the
/// two model-construction procedures:
///  * Procedure 1 maps an RRG to a TGMG: edge latencies (buffer counts)
///    become transition delays, tokens become markings; multi-input nodes
///    get one auxiliary delay node per input edge.
///  * Procedure 2 refines early-evaluation nodes with a unit-delay
///    self-loop structure so that the LP throughput bound (eq. (4)) is
///    tight w.r.t. single-firing-per-cycle semantics (Lemma 3.1).
///
/// The LP bound itself (eq. (4)/(11)) is in `tgmg_throughput_bound`.

#include <string>
#include <vector>

#include "core/rrg.hpp"
#include "graph/digraph.hpp"
#include "lp/model.hpp"

namespace elrr {

/// Timed guarded marked graph. Guards are implicit in the node kind: a
/// simple node's only guard is the full input set; an early node has one
/// singleton guard per input edge, selected with probability gamma.
class Tgmg {
 public:
  NodeId add_node(std::string name, double delay,
                  NodeKind kind = NodeKind::kSimple);
  EdgeId add_edge(NodeId u, NodeId v, int tokens, double gamma = 1.0);

  const Digraph& graph() const { return g_; }
  std::size_t num_nodes() const { return g_.num_nodes(); }
  std::size_t num_edges() const { return g_.num_edges(); }

  const std::string& name(NodeId n) const { return names_[n]; }
  double delay(NodeId n) const { return delays_[n]; }
  NodeKind kind(NodeId n) const { return kinds_[n]; }
  bool is_early(NodeId n) const { return kinds_[n] == NodeKind::kEarly; }
  int tokens(EdgeId e) const { return tokens_[e]; }
  double gamma(EdgeId e) const { return gammas_[e]; }

  /// Kind/probability sanity plus liveness of the marking.
  void validate() const;

  std::string to_dot() const;

 private:
  Digraph g_;
  std::vector<std::string> names_;
  std::vector<double> delays_;
  std::vector<NodeKind> kinds_;
  std::vector<int> tokens_;
  std::vector<double> gammas_;
};

/// Procedure 1: TGMG model of an RRG.
///  - single-input node n with input edge e: delta(n) = R(e), m0(e) = R0(e);
///  - multi-input node n: one auxiliary node per input edge e = (u, n) with
///    delta = R(e), m0(u, aux) = 0, m0(aux, n) = R0(e); delta(n) = 0.
Tgmg procedure1(const Rrg& rrg);

/// Procedure 2: refinement for early-evaluation nodes (self-loop through a
/// unit-delay node s with one token; every input edge split by a zero-delay
/// synchronization node fed from s).
Tgmg procedure2(const Tgmg& in);

/// procedure2(procedure1(rrg)).
Tgmg refined_tgmg(const Rrg& rrg);

/// Throughput upper bound by LP (4) (equivalently (11)):
///   max phi  s.t.  delta(n) phi <= mhat(e)            (simple n, e in *n)
///                  delta(n) phi <= sum gamma(e) mhat(e)   (early n)
///                  mhat(e) = m0(e) + sigma(u) - sigma(v)
struct ThroughputBound {
  bool bounded = false;   ///< false when the LP is unbounded (no cycles)
  double theta = 0.0;     ///< the bound (only when bounded)
};
ThroughputBound tgmg_throughput_bound(const Tgmg& tgmg);

/// The LP of eq. (4) as a model (phi is column `phi_col`; maximization).
/// Exposed for export/interop (e.g. `elrr export --format mps` re-solves
/// the bound with an external solver).
struct ThroughputLp {
  lp::Model model;
  int phi_col = 0;
};
ThroughputLp build_throughput_lp(const Tgmg& tgmg);

/// Convenience: LP throughput bound of an RRG through its refined TGMG.
/// This is the paper's Theta_lp(RC).
double throughput_upper_bound(const Rrg& rrg);

}  // namespace elrr
