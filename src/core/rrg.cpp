#include "core/rrg.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "graph/bellman_ford.hpp"
#include "graph/dot.hpp"
#include "graph/topo.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace elrr {

NodeId Rrg::add_node(std::string name, double delay, NodeKind kind) {
  ELRR_REQUIRE(std::isfinite(delay) && delay >= 0.0,
               "node delay must be finite and non-negative, got ", delay);
  const NodeId n = g_.add_node();
  if (name.empty()) name = "n" + std::to_string(n);
  names_.push_back(std::move(name));
  delays_.push_back(delay);
  kinds_.push_back(kind);
  telescopic_.push_back(Telescopic{});
  return n;
}

void Rrg::set_telescopic(NodeId n, double fast_prob, int slow_extra) {
  ELRR_REQUIRE(std::isfinite(fast_prob) && fast_prob > 0.0 && fast_prob <= 1.0,
               "telescopic fast probability of ", name(n),
               " must be in (0, 1], got ", fast_prob);
  ELRR_REQUIRE(slow_extra >= 0 && slow_extra <= 200,
               "telescopic slow_extra of ", name(n),
               " must be in [0, 200], got ", slow_extra);
  telescopic_[n] = Telescopic{fast_prob, slow_extra};
}

bool Rrg::has_telescopic() const {
  return std::any_of(telescopic_.begin(), telescopic_.end(),
                     [](const Telescopic& t) { return t.enabled(); });
}

EdgeId Rrg::add_edge(NodeId u, NodeId v, int tokens, int buffers,
                     double gamma) {
  ELRR_REQUIRE(std::isfinite(gamma), "gamma must be finite");
  const EdgeId e = g_.add_edge(u, v);
  tokens_.push_back(tokens);
  buffers_.push_back(buffers);
  gammas_.push_back(gamma);
  return e;
}

double Rrg::max_delay() const {
  double best = 0.0;
  for (double d : delays_) best = std::max(best, d);
  return best;
}

double Rrg::total_delay() const {
  double total = 0.0;
  for (double d : delays_) total += d;
  return total;
}

void Rrg::validate() const {
  for (EdgeId e = 0; e < num_edges(); ++e) {
    ELRR_REQUIRE(buffers_[e] >= 0, "edge ", e, " (", name(g_.src(e)), " -> ",
                 name(g_.dst(e)), ") has negative buffer count ", buffers_[e]);
    ELRR_REQUIRE(buffers_[e] >= tokens_[e], "edge ", e, " (", name(g_.src(e)),
                 " -> ", name(g_.dst(e)), ") violates R >= R0: R=", buffers_[e],
                 " R0=", tokens_[e]);
  }
  for (NodeId n = 0; n < num_nodes(); ++n) {
    if (!is_early(n)) continue;
    ELRR_REQUIRE(g_.in_degree(n) >= 2, "early-evaluation node ", name(n),
                 " must have at least two inputs");
    double sum = 0.0;
    for (EdgeId e : g_.in_edges(n)) {
      ELRR_REQUIRE(gammas_[e] > 0.0 && gammas_[e] <= 1.0,
                   "gamma of input edge ", e, " of early node ", name(n),
                   " must be in (0, 1], got ", gammas_[e]);
      sum += gammas_[e];
    }
    ELRR_REQUIRE(std::abs(sum - 1.0) <= 1e-9,
                 "input probabilities of early node ", name(n),
                 " must sum to 1, got ", sum);
  }
  std::vector<EdgeId> dead;
  if (!is_live(&dead)) {
    std::ostringstream os;
    os << "RRG is not live: cycle with non-positive token sum through edges";
    for (EdgeId e : dead) os << " " << e;
    throw InvalidInputError(os.str());
  }
}

bool Rrg::is_live(std::vector<EdgeId>* dead_cycle) const {
  std::vector<std::int64_t> weights(tokens_.begin(), tokens_.end());
  return !graph::has_nonpositive_cycle(g_, weights, dead_cycle);
}

std::string Rrg::to_dot() const {
  graph::DotStyle style;
  style.graph_name = "rrg";
  style.node_label = [this](NodeId n) {
    std::ostringstream os;
    os << name(n) << "\\n" << format_fixed(delay(n), 2);
    if (is_telescopic(n)) {
      os << "\\np=" << format_fixed(telescopic(n).fast_prob, 2) << "+"
         << telescopic(n).slow_extra;
    }
    return os.str();
  };
  style.node_attrs = [this](NodeId n) {
    return is_early(n) ? std::string("shape=trapezium") : std::string();
  };
  style.edge_label = [this](EdgeId e) {
    std::ostringstream os;
    os << "R0=" << tokens(e) << " R=" << buffers(e);
    if (is_early(g_.dst(e))) os << " g=" << format_fixed(gamma(e), 2);
    return os.str();
  };
  return graph::to_dot(g_, style);
}

RrConfig initial_config(const Rrg& rrg) {
  RrConfig config;
  config.tokens.reserve(rrg.num_edges());
  config.buffers.reserve(rrg.num_edges());
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    config.tokens.push_back(rrg.tokens(e));
    config.buffers.push_back(rrg.buffers(e));
  }
  return config;
}

Rrg apply_config(const Rrg& rrg, const RrConfig& config) {
  ELRR_REQUIRE(config.tokens.size() == rrg.num_edges() &&
                   config.buffers.size() == rrg.num_edges(),
               "configuration size mismatch");
  Rrg out = rrg;
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    out.set_tokens(e, config.tokens[e]);
    out.set_buffers(e, config.buffers[e]);
  }
  out.validate();
  return out;
}

RrConfig apply_retiming(const Rrg& rrg, const std::vector<int>& r,
                        bool grow_buffers) {
  ELRR_REQUIRE(r.size() == rrg.num_nodes(), "retiming vector size mismatch");
  RrConfig config;
  config.tokens.resize(rrg.num_edges());
  config.buffers.resize(rrg.num_edges());
  const Digraph& g = rrg.graph();
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    const int moved = rrg.tokens(e) + r[g.dst(e)] - r[g.src(e)];
    config.tokens[e] = moved;
    config.buffers[e] = grow_buffers ? std::max({moved, rrg.buffers(e), 0})
                                     : std::max(moved, 0);
  }
  return config;
}

bool validate_config(const Rrg& rrg, const RrConfig& config,
                     std::string* why) {
  const auto fail = [&](const std::string& message) {
    if (why != nullptr) *why = message;
    return false;
  };
  if (config.tokens.size() != rrg.num_edges() ||
      config.buffers.size() != rrg.num_edges()) {
    return fail("configuration size mismatch");
  }
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    if (config.buffers[e] < 0) {
      return fail("negative buffer count on edge " + std::to_string(e));
    }
    if (config.buffers[e] < config.tokens[e]) {
      return fail("R < R0 on edge " + std::to_string(e));
    }
  }
  // Reachability by retiming: the token *change* must be a potential
  // difference, i.e. delta(e) = r(dst) - r(src) for some integer r. This
  // holds iff delta sums to zero around every cycle, which is equivalent
  // to feasibility of both delta(e) <= r(v) - r(u) and its negation.
  const Digraph& g = rrg.graph();
  std::vector<std::int64_t> upper(rrg.num_edges());
  Digraph doubled(g.num_nodes());
  std::vector<std::int64_t> w;
  for (EdgeId e = 0; e < rrg.num_edges(); ++e) {
    const std::int64_t delta = config.tokens[e] - rrg.tokens(e);
    doubled.add_edge(g.src(e), g.dst(e));
    w.push_back(delta);
    doubled.add_edge(g.dst(e), g.src(e));
    w.push_back(-delta);
  }
  if (!graph::solve_difference_constraints(doubled, w).feasible) {
    return fail("token change is not a retiming (cycle sums not preserved)");
  }
  // Liveness of the result.
  std::vector<std::int64_t> tokens(config.tokens.begin(), config.tokens.end());
  if (graph::has_nonpositive_cycle(g, tokens)) {
    return fail("configuration is not live");
  }
  return true;
}

CycleTimeResult cycle_time(const Rrg& rrg) {
  std::vector<double> delays;
  delays.reserve(rrg.num_nodes());
  for (NodeId n = 0; n < rrg.num_nodes(); ++n) delays.push_back(rrg.delay(n));
  const auto res = graph::longest_path(
      rrg.graph(), delays, [&](EdgeId e) { return rrg.buffers(e) == 0; });
  CycleTimeResult out;
  out.valid = res.is_dag;
  out.tau = res.max_arrival;
  out.critical_path = res.critical_path;
  return out;
}

double effective_cycle_time(double tau, double theta) {
  ELRR_REQUIRE(theta > 0.0, "throughput must be positive, got ", theta);
  return tau / theta;
}

double throughput_cap(const Rrg& rrg) {
  double cap = 1.0;
  for (NodeId n = 0; n < rrg.num_nodes(); ++n) {
    if (rrg.is_telescopic(n)) {
      cap = std::min(cap, 1.0 / (1.0 + rrg.service(n)));
    }
  }
  return cap;
}

}  // namespace elrr
