#include "core/tgmg.hpp"

#include <cmath>
#include <sstream>

#include "graph/bellman_ford.hpp"
#include "graph/dot.hpp"
#include "lp/milp.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace elrr {

NodeId Tgmg::add_node(std::string name, double delay, NodeKind kind) {
  ELRR_REQUIRE(std::isfinite(delay) && delay >= 0.0,
               "TGMG node delay must be finite and non-negative");
  const NodeId n = g_.add_node();
  if (name.empty()) name = "t" + std::to_string(n);
  names_.push_back(std::move(name));
  delays_.push_back(delay);
  kinds_.push_back(kind);
  return n;
}

EdgeId Tgmg::add_edge(NodeId u, NodeId v, int tokens, double gamma) {
  const EdgeId e = g_.add_edge(u, v);
  tokens_.push_back(tokens);
  gammas_.push_back(gamma);
  return e;
}

void Tgmg::validate() const {
  for (NodeId n = 0; n < num_nodes(); ++n) {
    if (!is_early(n)) continue;
    ELRR_REQUIRE(g_.in_degree(n) >= 1, "early TGMG node ", name(n),
                 " has no inputs");
    double sum = 0.0;
    for (EdgeId e : g_.in_edges(n)) {
      ELRR_REQUIRE(gammas_[e] > 0.0 && gammas_[e] <= 1.0,
                   "bad guard probability on edge ", e);
      sum += gammas_[e];
    }
    ELRR_REQUIRE(std::abs(sum - 1.0) <= 1e-9,
                 "guard probabilities of ", name(n), " sum to ", sum);
  }
  std::vector<std::int64_t> weights(tokens_.begin(), tokens_.end());
  ELRR_REQUIRE(!graph::has_nonpositive_cycle(g_, weights),
               "TGMG marking is not live");
}

std::string Tgmg::to_dot() const {
  graph::DotStyle style;
  style.graph_name = "tgmg";
  style.node_label = [this](NodeId n) {
    std::ostringstream os;
    os << name(n) << "\\nd=" << format_fixed(delay(n), 2);
    return os.str();
  };
  style.node_attrs = [this](NodeId n) {
    return is_early(n) ? std::string("shape=trapezium") : std::string();
  };
  style.edge_label = [this](EdgeId e) {
    std::ostringstream os;
    os << tokens(e);
    if (is_early(g_.dst(e))) os << " g=" << format_fixed(gamma(e), 2);
    return os.str();
  };
  return graph::to_dot(g_, style);
}

Tgmg procedure1(const Rrg& rrg) {
  Tgmg out;
  const Digraph& g = rrg.graph();
  // Original nodes first (same ids as the RRG). A telescopic node keeps
  // its expected extra service latency (1-p) * slow_extra as its own
  // delay (pipelined through-latency); its input-edge buffer latencies
  // must then live on auxiliary nodes even for a single input, or the
  // busy-throttle loop added below would wrongly serialize the EB chain.
  for (NodeId n = 0; n < rrg.num_nodes(); ++n) {
    double delay = rrg.service(n);
    if (g.in_degree(n) == 1 && !rrg.is_telescopic(n)) {
      delay = static_cast<double>(rrg.buffers(g.in_edges(n)[0]));
    }
    out.add_node(rrg.name(n), delay, rrg.kind(n));
  }
  for (NodeId n = 0; n < rrg.num_nodes(); ++n) {
    if (g.in_degree(n) == 1 && !rrg.is_telescopic(n)) {
      // Single input: direct edge with the original marking; the buffer
      // latency lives on the node itself (step 3 of Procedure 1).
      const EdgeId e = g.in_edges(n)[0];
      out.add_edge(g.src(e), n, rrg.tokens(e), rrg.gamma(e));
    } else {
      // Multi input: one delay node per input edge (step 4).
      for (EdgeId e : g.in_edges(n)) {
        const NodeId aux = out.add_node(
            rrg.name(n) + "/in" + std::to_string(e),
            static_cast<double>(rrg.buffers(e)), NodeKind::kSimple);
        out.add_edge(g.src(e), aux, 0);
        out.add_edge(aux, n, rrg.tokens(e), rrg.gamma(e));
      }
    }
  }
  // Busy throttle for telescopic *simple* nodes: a unit-delay loop
  // holding one token bounds the firing rate by 1 / (1 + service(n)).
  // Early telescopic nodes get the equivalent throttle from Procedure
  // 2's unit-delay s-node, so nothing is added here for them.
  for (NodeId n = 0; n < rrg.num_nodes(); ++n) {
    if (!rrg.is_telescopic(n) || rrg.is_early(n)) continue;
    const NodeId throttle =
        out.add_node(rrg.name(n) + "/tl", 1.0, NodeKind::kSimple);
    out.add_edge(n, throttle, 0);
    out.add_edge(throttle, n, 1);
  }
  return out;
}

Tgmg procedure2(const Tgmg& in) {
  Tgmg out;
  const Digraph& g = in.graph();
  for (NodeId n = 0; n < in.num_nodes(); ++n) {
    out.add_node(in.name(n), in.delay(n), in.kind(n));
  }
  // Copy edges into nodes that are not early; early-node inputs are split.
  for (EdgeId e = 0; e < in.num_edges(); ++e) {
    if (in.is_early(g.dst(e))) continue;
    out.add_edge(g.src(e), g.dst(e), in.tokens(e), in.gamma(e));
  }
  for (NodeId n = 0; n < in.num_nodes(); ++n) {
    if (!in.is_early(n)) continue;
    const NodeId s =
        out.add_node(in.name(n) + "/s", 1.0, NodeKind::kSimple);
    out.add_edge(n, s, 1);
    for (EdgeId e : g.in_edges(n)) {
      const NodeId k = out.add_node(
          in.name(n) + "/k" + std::to_string(e), 0.0, NodeKind::kSimple);
      out.add_edge(g.src(e), k, in.tokens(e));
      out.add_edge(k, n, 0, in.gamma(e));
      out.add_edge(s, k, 0);
    }
  }
  return out;
}

Tgmg refined_tgmg(const Rrg& rrg) { return procedure2(procedure1(rrg)); }

ThroughputLp build_throughput_lp(const Tgmg& tgmg) {
  tgmg.validate();
  const Digraph& g = tgmg.graph();

  ThroughputLp out;
  lp::Model& model = out.model;
  model.set_sense(lp::Sense::kMaximize);
  const int phi = model.add_col(0.0, lp::kInf, 1.0, false, "phi");
  out.phi_col = phi;
  std::vector<int> sigma(tgmg.num_nodes());
  for (NodeId n = 0; n < tgmg.num_nodes(); ++n) {
    sigma[n] = model.add_col(-lp::kInf, lp::kInf, 0.0, false,
                             "sigma_" + tgmg.name(n));
  }
  if (!sigma.empty()) {
    // Pin the translation freedom of the firing counts.
    model.set_col_bounds(sigma[0], 0.0, 0.0);
  }

  for (NodeId n = 0; n < tgmg.num_nodes(); ++n) {
    if (g.in_degree(n) == 0) continue;
    if (!tgmg.is_early(n)) {
      // delta(n) phi - sigma(u) + sigma(n) <= m0(e) for each input edge.
      for (EdgeId e : g.in_edges(n)) {
        model.add_row(-lp::kInf, static_cast<double>(tgmg.tokens(e)),
                      {{phi, tgmg.delay(n)},
                       {sigma[g.src(e)], -1.0},
                       {sigma[n], 1.0}},
                      "mg_" + std::to_string(e));
      }
    } else {
      // delta(n) phi <= sum_e gamma(e) (m0(e) + sigma(u) - sigma(n)).
      std::vector<lp::ColEntry> entries{{phi, tgmg.delay(n)}};
      double rhs = 0.0;
      for (EdgeId e : g.in_edges(n)) {
        rhs += tgmg.gamma(e) * static_cast<double>(tgmg.tokens(e));
        entries.push_back({sigma[g.src(e)], -tgmg.gamma(e)});
        entries.push_back({sigma[n], tgmg.gamma(e)});
      }
      model.add_row(-lp::kInf, rhs, std::move(entries),
                    "ee_" + tgmg.name(n));
    }
  }

  return out;
}

ThroughputBound tgmg_throughput_bound(const Tgmg& tgmg) {
  const lp::Model model = build_throughput_lp(tgmg).model;
  lp::MilpResult result = lp::solve_milp(model);
  if (result.status == lp::MilpStatus::kNumericError) {
    // Dense models occasionally defeat the default tolerances after
    // thousands of tableau pivots; one retry with a coarser feasibility
    // tolerance and a stricter pivot threshold clears them in practice.
    lp::MilpOptions retry;
    retry.lp.feas_tol = 1e-6;
    retry.lp.pivot_tol = 1e-8;
    result = lp::solve_milp(model, retry);
  }
  ThroughputBound bound;
  if (result.status == lp::MilpStatus::kUnbounded) {
    bound.bounded = false;
    return bound;
  }
  ELRR_ASSERT(result.status == lp::MilpStatus::kOptimal,
              "throughput LP failed: ", lp::to_string(result.status));
  bound.bounded = true;
  bound.theta = result.objective;
  return bound;
}

double throughput_upper_bound(const Rrg& rrg) {
  const ThroughputBound bound = tgmg_throughput_bound(refined_tgmg(rrg));
  ELRR_REQUIRE(bound.bounded,
               "throughput LP unbounded: the RRG has no token-limited cycle");
  return bound.theta;
}

}  // namespace elrr
