#pragma once

/// \file opt.hpp
/// The paper's optimization method (Section 4):
///  * MIN_CYC(x): minimum-cycle-time RC with LP throughput bound >= 1/x;
///  * MAX_THR(tau): maximum-throughput RC with cycle time <= tau;
///  * MIN_EFF_CYC: the Pareto-walk heuristic combining both, returning all
///    non-dominated configurations plus the one minimizing xi_lp.
///
/// Both primitives are *linear* MILPs. The non-convex product x * R0'(e)
/// of problem (12) disappears after substituting scaled firing counts
/// (sigma-tilde absorbs x * retiming) -- see DESIGN.md "Key reformulation";
/// consequently only the buffer counts R'(e) need integrality, and the
/// integral retiming vector is recovered afterwards with Bellman-Ford.

#include <cstdint>
#include <vector>

#include "core/analysis.hpp"
#include "core/rrg.hpp"
#include "lp/milp.hpp"

namespace elrr {

struct OptOptions {
  /// Pareto step (the paper uses 0.01).
  double epsilon = 0.01;
  /// Budgets for each MILP call (the paper ran CPLEX with a 20 min cap).
  lp::MilpOptions milp;
  /// Treat every node as simple (late evaluation); used for the xi_nee
  /// baseline of Table 2.
  bool treat_all_simple = false;
  /// Run the MAX_THR polish after each MIN_CYC step of MIN_EFF_CYC (the
  /// paper's exact recipe). Disabling it keeps only the MIN_CYC results
  /// (still Pareto-filtered) and is considerably cheaper on big circuits.
  bool polish = true;
};

/// Result of one MILP primitive.
struct RcSolveResult {
  bool feasible = false;
  bool exact = false;       ///< proven optimal (false if a budget was hit)
  RrConfig config;          ///< valid RC (when feasible)
  double objective = 0.0;   ///< tau for MIN_CYC, x = 1/theta for MAX_THR
};

/// MIN_CYC(x): minimize cycle time subject to Theta_lp >= 1/x (x >= 1).
RcSolveResult min_cyc(const Rrg& rrg, double x, const OptOptions& options = {});

/// MAX_THR(tau): maximize Theta_lp subject to cycle time <= tau.
RcSolveResult max_thr(const Rrg& rrg, double tau,
                      const OptOptions& options = {});

/// One stored Pareto candidate.
struct ParetoPoint {
  RrConfig config;
  double tau = 0.0;       ///< recomputed combinationally from the RC
  double theta_lp = 0.0;  ///< recomputed by the throughput LP
  double xi_lp = 0.0;
  bool exact = true;
};

struct MinEffCycResult {
  /// Non-dominated configurations, sorted by increasing cycle time.
  std::vector<ParetoPoint> points;
  /// Index into `points` of the xi_lp-minimal configuration (RC^lp_min).
  std::size_t best_index = 0;
  int milp_calls = 0;
  bool all_exact = true;   ///< every MILP proven optimal
  double seconds = 0.0;

  const ParetoPoint& best() const { return points[best_index]; }
  /// Indices of the k best points by xi_lp (for simulation-based
  /// reranking, Table 1/2 flow).
  std::vector<std::size_t> k_best(std::size_t k) const;
};

/// The MIN_EFF_CYC heuristic (Section 4). Requires a strongly connected,
/// live RRG.
MinEffCycResult min_eff_cyc(const Rrg& rrg, const OptOptions& options = {});

/// Recovers an integral retiming vector r from integral buffer counts R',
/// i.e. solves r(v) - r(u) <= R'(e) - R0(e) (feasible whenever R' supports
/// any retiming); the resulting tokens are R0'(e) = R0(e) + r(v) - r(u).
/// Throws InternalError if infeasible.
std::vector<int> recover_retiming(const Rrg& rrg,
                                  const std::vector<int>& buffers);

}  // namespace elrr
