#pragma once

/// \file opt.hpp
/// The paper's optimization method (Section 4):
///  * MIN_CYC(x): minimum-cycle-time RC with LP throughput bound >= 1/x;
///  * MAX_THR(tau): maximum-throughput RC with cycle time <= tau;
///  * MIN_EFF_CYC: the Pareto-walk heuristic combining both, returning all
///    non-dominated configurations plus the one minimizing xi_lp.
///
/// Both primitives are *linear* MILPs. The non-convex product x * R0'(e)
/// of problem (12) disappears after substituting scaled firing counts
/// (sigma-tilde absorbs x * retiming) -- see DESIGN.md "Key reformulation";
/// consequently only the buffer counts R'(e) need integrality, and the
/// integral retiming vector is recovered afterwards with Bellman-Ford.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/analysis.hpp"
#include "core/rrg.hpp"
#include "lp/milp.hpp"
#include "lp/session.hpp"
#include "support/stopwatch.hpp"

namespace elrr {

struct OptOptions {
  /// Pareto step (the paper uses 0.01).
  double epsilon = 0.01;
  /// Budgets for each MILP call (the paper ran CPLEX with a 20 min cap).
  lp::MilpOptions milp;
  /// Treat every node as simple (late evaluation); used for the xi_nee
  /// baseline of Table 2.
  bool treat_all_simple = false;
  /// Run the MAX_THR polish after each MIN_CYC step of MIN_EFF_CYC (the
  /// paper's exact recipe). Disabling it keeps only the MIN_CYC results
  /// (still Pareto-filtered) and is considerably cheaper on big circuits.
  bool polish = true;
  /// Warm-start adjacent MILP solves of the Pareto walk from the
  /// previous step's optimal basis (lp::MilpSession). Off: every step
  /// is a cold solve, bit-identical to the stateless `solve_milp` path
  /// by construction. On: results are pinned to the cold path by the
  /// differential suites (tests/lp, tests/flow) -- see src/lp/README.md.
  bool milp_warm = true;
};

/// Result of one MILP primitive.
struct RcSolveResult {
  bool feasible = false;
  bool exact = false;       ///< proven optimal (false if a budget was hit)
  RrConfig config;          ///< valid RC (when feasible)
  double objective = 0.0;   ///< tau for MIN_CYC, x = 1/theta for MAX_THR
};

/// MIN_CYC(x): minimize cycle time subject to Theta_lp >= 1/x (x >= 1).
RcSolveResult min_cyc(const Rrg& rrg, double x, const OptOptions& options = {});

/// The MIN_CYC(x) MILP exactly as one Pareto-walk step solves it: the
/// sigma-tilde form (tau + integer buffer counts + scaled firing
/// variables) at throughput bound x >= 1. For export and round-trip
/// tooling (lp::to_mps / lp::from_mps): lp::solve_milp on the returned
/// model is the same MILP a walk step at this x solves.
/// `options.treat_all_simple` applies the same rewrite min_cyc would.
lp::Model build_min_cyc_model(const Rrg& rrg, double x,
                              const OptOptions& options = {});

/// MAX_THR(tau): maximize Theta_lp subject to cycle time <= tau.
RcSolveResult max_thr(const Rrg& rrg, double tau,
                      const OptOptions& options = {});

/// One stored Pareto candidate.
struct ParetoPoint {
  RrConfig config;
  double tau = 0.0;       ///< recomputed combinationally from the RC
  double theta_lp = 0.0;  ///< recomputed by the throughput LP
  double xi_lp = 0.0;
  bool exact = true;
};

struct MinEffCycResult {
  /// Non-dominated configurations, sorted by increasing cycle time.
  std::vector<ParetoPoint> points;
  /// Index into `points` of the xi_lp-minimal configuration (RC^lp_min).
  std::size_t best_index = 0;
  int milp_calls = 0;
  bool all_exact = true;   ///< every MILP proven optimal
  double seconds = 0.0;

  const ParetoPoint& best() const { return points[best_index]; }
  /// Indices of the k best points by xi_lp (for simulation-based
  /// reranking, Table 1/2 flow).
  std::vector<std::size_t> k_best(std::size_t k) const;
};

/// Copy of `rrg` with every node rewritten to simple (late) evaluation --
/// the xi_nee baseline of Table 2 and the rewrite behind
/// OptOptions::treat_all_simple (the walk, the flow engine and the
/// benches must all apply the identical rewrite).
Rrg as_all_simple(const Rrg& rrg);

/// The MIN_EFF_CYC heuristic (Section 4). Requires a strongly connected,
/// live RRG. Equivalent to replaying a ParetoWalk to completion.
MinEffCycResult min_eff_cyc(const Rrg& rrg, const OptOptions& options = {});

/// Resumable, step-wise MIN_EFF_CYC: the same walk min_eff_cyc runs, but
/// surrendering control after every recorded candidate so callers can act
/// on configurations *mid-walk* (the pipelined flow engine streams each
/// one into a simulation fleet while the next MILP solves).
///
///   ParetoWalk walk(rrg, options);
///   while (auto point = walk.advance()) use(*point);
///   MinEffCycResult result = walk.finish();
///
/// Replayed to completion, finish() is bit-identical to min_eff_cyc of
/// the same (rrg, options) -- min_eff_cyc is implemented as exactly that
/// replay. advance() may emit a candidate the walk has already visited
/// (budget-hit MILPs returning the previous incumbent); finish()
/// deduplicates and Pareto-filters just like min_eff_cyc.
///
/// Feedback pruning (off unless a hint is set): set_xi_hint(xi) arms the
/// next MIN_CYC steps with MILP cutoffs derived from the best effective
/// cycle time a caller has *observed* (e.g. by simulation): a step whose
/// proven cycle-time bound cannot beat xi * theta_target is futile and is
/// skipped instead of solved to optimality, and an incumbent good enough
/// to beat it stops the branch & bound early. Pruned steps advance the
/// theta target without recording a candidate. With no hint the walk is
/// exact and deterministic; with one, frontiers may lose points that
/// cannot improve on the hint (pruned_steps() reports how many).
namespace detail {
struct WalkMilp;  ///< the walk's persistent MILP session (opt.cpp)
}  // namespace detail

class ParetoWalk {
 public:
  ParetoWalk(const Rrg& rrg, const OptOptions& options = {});
  ~ParetoWalk();

  /// Runs the walk up to its next recorded candidate: the identity
  /// configuration first, then one (budgeted) MILP step per call.
  /// Returns std::nullopt once the walk is over (then done() is true).
  std::optional<ParetoPoint> advance();
  bool done() const { return state_ == State::kDone; }

  /// Arms feedback pruning with the best observed effective cycle time
  /// (<= 0 or non-finite clears the hint). Takes effect from the next
  /// advance() on; never affects already-recorded candidates.
  void set_xi_hint(double xi_observed);

  /// Frontier, best index and bookkeeping over everything recorded so
  /// far -- the min_eff_cyc result when the walk ran to completion, a
  /// valid partial result when cancelled mid-walk.
  MinEffCycResult finish() const;

  int milp_calls() const { return milp_calls_; }
  /// MIN_CYC steps skipped because the xi hint proved them dominated.
  int pruned_steps() const { return pruned_steps_; }
  /// Counters of the walk's MILP session (warm/cold solves, simplex
  /// iterations, solve seconds); all-zero before the first MILP step.
  lp::SessionStats milp_stats() const;

 private:
  enum class State { kIdentity, kFirstMaxThr, kStep, kDone };

  /// Evaluates and stores one solved configuration (deduplicated), and
  /// tracks the exactness flag -- the record() of min_eff_cyc.
  ParetoPoint record(const RcSolveResult& solve);

  /// The MILP session shared by every MIN_CYC step and MAX_THR decision
  /// probe of this walk (they are all the same x-parameterized MIN_TAU
  /// model; adjacent solves differ only in a few row bounds). Built on
  /// the first MILP step; owns the warm basis state across advance().
  detail::WalkMilp& milp_session();

  const Rrg rrg_;          ///< all-simple rewrite already applied
  OptOptions options_;     ///< treat_all_simple already consumed
  std::unique_ptr<detail::WalkMilp> milp_;
  State state_ = State::kIdentity;
  std::vector<ParetoPoint> points_;
  ParetoPoint last_;       ///< walk position (theta monotone driver)
  double target_ = 0.0;
  double cap_ = 1.0;
  double xi_hint_ = 0.0;   ///< 0 = no hint
  int iter_ = 0;
  int max_iters_ = 0;
  int milp_calls_ = 0;
  int pruned_steps_ = 0;
  bool all_exact_ = true;
  Stopwatch watch_;
};

/// Recovers an integral retiming vector r from integral buffer counts R',
/// i.e. solves r(v) - r(u) <= R'(e) - R0(e) (feasible whenever R' supports
/// any retiming); the resulting tokens are R0'(e) = R0(e) + r(v) - r(u).
/// Throws InternalError if infeasible.
std::vector<int> recover_retiming(const Rrg& rrg,
                                  const std::vector<int>& buffers);

}  // namespace elrr
