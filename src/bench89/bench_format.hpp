#pragma once

/// \file bench_format.hpp
/// ISCAS89 `.bench` netlist format: parser, writer, and conversion to an
/// RRG. The DAC'09 experiments used the ISCAS89 circuits "only for
/// getting realistic graph structures" (largest SCC, then random
/// annotation); the parser handles real `.bench` files when available,
/// while generator.hpp synthesizes structures with the published
/// statistics when they are not (see DESIGN.md, substitutions).

#include <string>
#include <string_view>
#include <vector>

#include "core/rrg.hpp"

namespace elrr::bench89 {

struct Gate {
  std::string name;                 ///< output signal
  std::string func;                 ///< NAND, NOR, AND, OR, NOT, BUFF, XOR, DFF...
  std::vector<std::string> fanins;  ///< input signals
};

struct BenchCircuit {
  std::string name;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<Gate> gates;  ///< includes DFFs (func == "DFF")

  const Gate* find_gate(std::string_view output_name) const;
};

/// Parses `.bench` text: INPUT(x) / OUTPUT(y) / z = FUNC(a, b, ...).
/// '#' starts a comment. Throws InvalidInputError on malformed input,
/// duplicate definitions, or references to undefined signals.
BenchCircuit parse_bench(std::string_view text, std::string name = "bench");

/// Renders a circuit back to `.bench` text (parse/write round-trips).
std::string write_bench(const BenchCircuit& circuit);

/// Converts a netlist into an RRG:
///  * every non-DFF gate becomes a node (unit delay placeholder -- the
///    experimental flow re-randomizes delays anyway);
///  * a DFF whose input is gate `a` contributes one token+buffer on every
///    edge from `a` to the consumers of the DFF output;
///  * primary inputs/outputs are dropped (the experiments keep only the
///    largest SCC, which cannot contain them).
Rrg circuit_to_rrg(const BenchCircuit& circuit);

/// Largest strongly connected component of an RRG, as its own RRG.
Rrg largest_scc_rrg(const Rrg& rrg);

}  // namespace elrr::bench89
