#include "bench89/generator.hpp"

#include <algorithm>
#include <numeric>

#include "graph/bellman_ford.hpp"
#include "graph/scc.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace elrr::bench89 {

const std::vector<CircuitSpec>& table2_specs() {
  // Columns |N1|, |N2|, |E| of Table 2 (paper order).
  static const std::vector<CircuitSpec> specs = {
      {"s208", 7, 1, 9},      {"s641", 206, 15, 270}, {"s27", 9, 5, 24},
      {"s444", 45, 13, 82},   {"s838", 7, 1, 9},      {"s386", 36, 12, 131},
      {"s344", 122, 13, 176}, {"s400", 37, 9, 66},    {"s526", 43, 7, 71},
      {"s382", 35, 7, 60},    {"s420", 7, 1, 9},      {"s832", 76, 41, 462},
      {"s1488", 85, 48, 572}, {"s510", 63, 40, 407},  {"s953", 232, 36, 371},
      {"s713", 229, 27, 341}, {"s1494", 88, 48, 572}, {"s820", 72, 38, 424},
  };
  return specs;
}

const CircuitSpec& spec_by_name(const std::string& name) {
  for (const CircuitSpec& spec : table2_specs()) {
    if (spec.name == name) return spec;
  }
  throw InvalidInputError("unknown Table-2 circuit: " + name);
}

Digraph generate_structure(const CircuitSpec& spec, std::uint64_t seed) {
  const int n = spec.n_simple + spec.n_early;
  ELRR_REQUIRE(n >= 2, "need at least two nodes, spec gives ", n);
  ELRR_REQUIRE(spec.n_edges >= n,
               "need at least n edges for strong connectivity: |E|=",
               spec.n_edges, " < |N|=", n);
  ELRR_REQUIRE(spec.n_early <= spec.n_edges - n,
               "cannot give ", spec.n_early,
               " nodes a second input with only ", spec.n_edges - n,
               " extra edges");

  Rng rng(hash_name(spec.name) ^ seed);
  Digraph g(static_cast<std::size_t>(n));

  // Backbone: a random Hamiltonian cycle (strong connectivity with n
  // edges). Its traversal order doubles as a "level" order: real ISCAS89
  // SCCs are level-structured (combinational logic flows forward between
  // registers; cycles cross register boundaries), so extra edges are
  // mostly short forward chords and only occasionally feedback -- this
  // keeps the number of distinct short cycles realistic, which in turn
  // keeps the paper's 25% token density achievable after liveness repair.
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0u);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1],
              order[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
  }
  std::vector<std::size_t> pos(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (std::size_t i = 0; i < order.size(); ++i) {
    g.add_edge(order[i], order[(i + 1) % order.size()]);
  }

  const int extras = spec.n_edges - n;
  const std::int64_t window =
      std::max<std::int64_t>(2, n / 6);  // fan-in locality
  const auto has_edge = [&](NodeId u, NodeId v) {
    for (EdgeId e : g.out_edges(u)) {
      if (g.dst(e) == v) return true;
    }
    return false;
  };
  /// Picks a source for an extra edge into `dst`: usually a node slightly
  /// earlier in level order (combinational chord), sometimes later
  /// (feedback path).
  const auto add_extra_into = [&](NodeId dst) {
    const std::int64_t p = static_cast<std::int64_t>(pos[dst]);
    for (int attempt = 0; attempt < 96; ++attempt) {
      const bool forward = rng.bernoulli(0.85);
      std::int64_t src_pos;
      if (forward) {
        const std::int64_t lo = std::max<std::int64_t>(0, p - window);
        if (lo >= p) continue;  // dst is at level 0: no forward source
        src_pos = rng.uniform_int(lo, p - 1);
      } else {
        src_pos = rng.uniform_int(0, n - 1);
      }
      const NodeId src = order[static_cast<std::size_t>(src_pos)];
      if (src == dst) continue;
      if (attempt < 64 && has_edge(src, dst)) continue;  // prefer simple
      g.add_edge(src, dst);
      return;
    }
    // Dense corner: accept a parallel edge (RRGs are multigraphs).
    g.add_edge((dst + 1) % static_cast<NodeId>(n), dst);
  };

  // The first n_early extras target distinct nodes so that at least
  // n_early nodes end up with >= 2 inputs.
  std::vector<NodeId> early_targets = order;
  for (std::size_t i = early_targets.size(); i > 1; --i) {
    std::swap(early_targets[i - 1],
              early_targets[static_cast<std::size_t>(
                  rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
  }
  early_targets.resize(static_cast<std::size_t>(spec.n_early));

  int added = 0;
  for (NodeId target : early_targets) {
    add_extra_into(target);
    ++added;
  }
  for (; added < extras; ++added) {
    add_extra_into(static_cast<NodeId>(rng.uniform_int(0, n - 1)));
  }

  ELRR_ASSERT(g.num_edges() == static_cast<std::size_t>(spec.n_edges),
              "edge count mismatch");
  ELRR_ASSERT(graph::is_strongly_connected(g), "generator lost connectivity");
  return g;
}

Rrg annotate(const Digraph& structure, int n_early,
             const AnnotateOptions& options, std::uint64_t seed) {
  Rng rng(seed ^ 0xabcdef1234567890ULL);
  Rrg rrg;

  // Delays uniform in (0, 20] (Section 5).
  for (NodeId v = 0; v < structure.num_nodes(); ++v) {
    rrg.add_node("g" + std::to_string(v),
                 rng.uniform_open_closed(options.delay_lo, options.delay_hi));
  }
  // Tokens with probability 0.25; R = R0 ("originally RRGs have no
  // bubbles", so xi* equals the cycle time).
  for (EdgeId e = 0; e < structure.num_edges(); ++e) {
    const int token = rng.bernoulli(options.token_prob) ? 1 : 0;
    rrg.add_edge(structure.src(e), structure.dst(e), token, token);
  }
  // Liveness repair: every cycle must carry a token. A token-free cycle
  // is a non-positive cycle of the token weights.
  std::vector<std::int64_t> weights(rrg.num_edges());
  while (true) {
    for (EdgeId e = 0; e < rrg.num_edges(); ++e) weights[e] = rrg.tokens(e);
    std::vector<EdgeId> witness;
    if (!graph::has_nonpositive_cycle(structure, weights, &witness)) break;
    const EdgeId fix = witness[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(witness.size()) - 1))];
    rrg.set_tokens(fix, 1);
    rrg.set_buffers(fix, 1);
  }

  // Mark exactly n_early multi-input nodes as early evaluation, with
  // random branch probabilities.
  std::vector<NodeId> candidates;
  for (NodeId v = 0; v < rrg.num_nodes(); ++v) {
    if (structure.in_degree(v) >= 2) candidates.push_back(v);
  }
  ELRR_REQUIRE(static_cast<int>(candidates.size()) >= n_early,
               "structure has only ", candidates.size(),
               " multi-input nodes, need ", n_early);
  for (std::size_t i = candidates.size(); i > 1; --i) {
    std::swap(candidates[i - 1],
              candidates[static_cast<std::size_t>(
                  rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
  }
  for (int k = 0; k < n_early; ++k) {
    const NodeId v = candidates[static_cast<std::size_t>(k)];
    rrg.set_kind(v, NodeKind::kEarly);
    const auto probs =
        rng.simplex(structure.in_degree(v), options.min_gamma);
    std::size_t idx = 0;
    for (EdgeId e : structure.in_edges(v)) rrg.set_gamma(e, probs[idx++]);
  }

  rrg.validate();
  return rrg;
}

Rrg make_table2_rrg(const CircuitSpec& spec, std::uint64_t seed,
                    const AnnotateOptions& options) {
  const Digraph structure = generate_structure(spec, seed);
  return annotate(structure, spec.n_early, options,
                  hash_name(spec.name) ^ (seed * 0x9e3779b97f4a7c15ULL));
}

}  // namespace elrr::bench89
