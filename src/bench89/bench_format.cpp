#include "bench89/bench_format.hpp"

#include <map>
#include <sstream>

#include "graph/scc.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace elrr::bench89 {

const Gate* BenchCircuit::find_gate(std::string_view output_name) const {
  for (const Gate& gate : gates) {
    if (gate.name == output_name) return &gate;
  }
  return nullptr;
}

BenchCircuit parse_bench(std::string_view text, std::string name) {
  BenchCircuit circuit;
  circuit.name = std::move(name);

  std::map<std::string, bool> defined;  // signal -> is defined (input/gate)
  std::vector<std::pair<std::string, int>> references;  // signal, line no

  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view raw =
        text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    const std::size_t hash = raw.find('#');
    if (hash != std::string_view::npos) raw = raw.substr(0, hash);
    const std::string_view line = trim(raw);
    if (line.empty()) continue;

    const auto parse_paren = [&](std::string_view body) -> std::string {
      const std::size_t open = body.find('(');
      const std::size_t close = body.rfind(')');
      ELRR_REQUIRE(open != std::string_view::npos &&
                       close != std::string_view::npos && close > open,
                   "malformed .bench line ", line_no, ": ", std::string(line));
      return std::string(trim(body.substr(open + 1, close - open - 1)));
    };

    if (starts_with(to_upper(line), "INPUT")) {
      const std::string signal = parse_paren(line);
      ELRR_REQUIRE(!signal.empty(), "empty INPUT at line ", line_no);
      ELRR_REQUIRE(!defined.count(signal), "duplicate definition of '",
                   signal, "' at line ", line_no);
      defined[signal] = true;
      circuit.inputs.push_back(signal);
      continue;
    }
    if (starts_with(to_upper(line), "OUTPUT")) {
      const std::string signal = parse_paren(line);
      ELRR_REQUIRE(!signal.empty(), "empty OUTPUT at line ", line_no);
      circuit.outputs.push_back(signal);
      references.emplace_back(signal, line_no);
      continue;
    }

    // z = FUNC(a, b, ...)
    const std::size_t eq = line.find('=');
    ELRR_REQUIRE(eq != std::string_view::npos, "expected assignment at line ",
                 line_no, ": ", std::string(line));
    Gate gate;
    gate.name = std::string(trim(line.substr(0, eq)));
    ELRR_REQUIRE(!gate.name.empty(), "missing gate name at line ", line_no);
    const std::string_view rhs = trim(line.substr(eq + 1));
    const std::size_t open = rhs.find('(');
    ELRR_REQUIRE(open != std::string_view::npos, "missing '(' at line ",
                 line_no);
    gate.func = to_upper(trim(rhs.substr(0, open)));
    ELRR_REQUIRE(!gate.func.empty(), "missing function at line ", line_no);
    const std::string args = parse_paren(rhs);
    for (const std::string& field : split(args, ',')) {
      const std::string fanin(trim(field));
      ELRR_REQUIRE(!fanin.empty(), "empty fanin at line ", line_no);
      gate.fanins.push_back(fanin);
      references.emplace_back(fanin, line_no);
    }
    ELRR_REQUIRE(!gate.fanins.empty(), "gate without fanins at line ",
                 line_no);
    ELRR_REQUIRE(!defined.count(gate.name), "duplicate definition of '",
                 gate.name, "' at line ", line_no);
    defined[gate.name] = true;
    circuit.gates.push_back(std::move(gate));
  }

  for (const auto& [signal, line] : references) {
    ELRR_REQUIRE(defined.count(signal), "undefined signal '", signal,
                 "' referenced at line ", line);
  }
  return circuit;
}

std::string write_bench(const BenchCircuit& circuit) {
  std::ostringstream os;
  os << "# " << circuit.name << "\n";
  for (const auto& in : circuit.inputs) os << "INPUT(" << in << ")\n";
  for (const auto& out : circuit.outputs) os << "OUTPUT(" << out << ")\n";
  os << "\n";
  for (const Gate& gate : circuit.gates) {
    os << gate.name << " = " << gate.func << "(";
    for (std::size_t i = 0; i < gate.fanins.size(); ++i) {
      if (i) os << ", ";
      os << gate.fanins[i];
    }
    os << ")\n";
  }
  return os.str();
}

Rrg circuit_to_rrg(const BenchCircuit& circuit) {
  // Combinational gates become nodes. DFFs become token-carrying edges:
  // the signal produced by a DFF is "its input's signal, one cycle later".
  std::map<std::string, NodeId> node_of;     // combinational gate output
  std::map<std::string, std::string> dff_in; // DFF output -> input signal

  Rrg rrg;
  for (const Gate& gate : circuit.gates) {
    if (gate.func == "DFF") {
      ELRR_REQUIRE(gate.fanins.size() == 1, "DFF '", gate.name,
                   "' must have exactly one input");
      dff_in[gate.name] = gate.fanins[0];
    } else {
      node_of[gate.name] = rrg.add_node(gate.name, 1.0);
    }
  }

  // Resolve a signal to (combinational driver node, registers crossed).
  // Chains of DFFs accumulate tokens.
  const auto resolve = [&](std::string signal) -> std::pair<NodeId, int> {
    int registers = 0;
    for (std::size_t hops = 0; hops <= circuit.gates.size(); ++hops) {
      const auto dff = dff_in.find(signal);
      if (dff == dff_in.end()) break;
      ++registers;
      signal = dff->second;
    }
    const auto it = node_of.find(signal);
    if (it == node_of.end()) return {graph::kNoNode, registers};  // PI-driven
    return {it->second, registers};
  };

  for (const Gate& gate : circuit.gates) {
    if (gate.func == "DFF") continue;
    const NodeId dst = node_of.at(gate.name);
    for (const std::string& fanin : gate.fanins) {
      const auto [src, registers] = resolve(fanin);
      if (src == graph::kNoNode) continue;  // driven by a primary input
      rrg.add_edge(src, dst, registers, registers);
    }
  }
  return rrg;
}

Rrg largest_scc_rrg(const Rrg& rrg) {
  const auto nodes = graph::largest_scc_nodes(rrg.graph());
  const auto sub = graph::induced_subgraph(rrg.graph(), nodes);

  Rrg out;
  for (NodeId n = 0; n < sub.graph.num_nodes(); ++n) {
    const NodeId parent = sub.node_to_parent[n];
    out.add_node(rrg.name(parent), rrg.delay(parent), rrg.kind(parent));
  }
  for (EdgeId e = 0; e < sub.graph.num_edges(); ++e) {
    const EdgeId parent = sub.edge_to_parent[e];
    out.add_edge(sub.graph.src(e), sub.graph.dst(e), rrg.tokens(parent),
                 rrg.buffers(parent), rrg.gamma(parent));
  }
  return out;
}

}  // namespace elrr::bench89
