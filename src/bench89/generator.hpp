#pragma once

/// \file generator.hpp
/// Synthetic benchmark structures reproducing the DAC'09 experimental
/// setup (Section 5):
///  * graph structures with the paper's published per-circuit statistics
///    (|N1| simple nodes, |N2| early nodes, |E| edges; Table 2), strongly
///    connected like the extracted ISCAS89 SCCs;
///  * the paper's random annotation protocol: a token on each edge with
///    probability 0.25 (plus liveness repair), combinational delays
///    uniform in (0, 20], exactly |N2| multi-input nodes marked early,
///    random branch probabilities.
///
/// Everything is deterministic in (circuit name, seed).

#include <cstdint>
#include <string>
#include <vector>

#include "core/rrg.hpp"
#include "graph/digraph.hpp"

namespace elrr::bench89 {

/// Shape of one experiment circuit (columns 1-4 of Table 2).
struct CircuitSpec {
  std::string name;
  int n_simple = 0;  ///< |N1|
  int n_early = 0;   ///< |N2|
  int n_edges = 0;   ///< |E|
};

/// The 18 test cases of Table 2 with the paper's exact statistics.
const std::vector<CircuitSpec>& table2_specs();

/// Spec lookup by name (throws if unknown).
const CircuitSpec& spec_by_name(const std::string& name);

/// Strongly connected random structure with spec.n_simple + spec.n_early
/// nodes and spec.n_edges edges, at least spec.n_early of whose nodes have
/// >= 2 inputs. Deterministic in (spec.name, seed).
Digraph generate_structure(const CircuitSpec& spec, std::uint64_t seed);

struct AnnotateOptions {
  double token_prob = 0.25;   ///< paper: "a token with probability 0.25"
  double delay_lo = 0.0;      ///< delays uniform in (delay_lo, delay_hi]
  double delay_hi = 20.0;
  double min_gamma = 0.02;    ///< keep probabilities strictly positive
};

/// Applies the paper's annotation protocol to a structure. `n_early`
/// multi-input nodes are marked early evaluation (the paper marks
/// multi-input nodes with probability 0.4; fixing the count reproduces
/// each row's published |N2| exactly). Token placement gets a liveness
/// repair: while some cycle carries no token, a random edge of a
/// token-free cycle receives one.
Rrg annotate(const Digraph& structure, int n_early,
             const AnnotateOptions& options, std::uint64_t seed);

/// generate + annotate for one Table-2 circuit (seed folded with the
/// circuit name, so every circuit gets an independent stream).
Rrg make_table2_rrg(const CircuitSpec& spec, std::uint64_t seed = 1,
                    const AnnotateOptions& options = {});

}  // namespace elrr::bench89
