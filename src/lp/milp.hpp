#pragma once

/// \file milp.hpp
/// Branch & bound MILP solver over SimplexSolver.
///
/// Mirrors how the paper used CPLEX: solves are budgeted (the paper used a
/// 20-minute timeout) and on budget exhaustion the best incumbent plus a
/// proven bound are reported instead of failing.
///
/// Search: best-bound-first with most-fractional branching, warm-started
/// dual re-solves replayed from the root relaxation, and a fix-and-round
/// primal heuristic for early incumbents.

#include <cstdint>
#include <limits>
#include <vector>

#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace elrr::lp {

enum class MilpStatus {
  kOptimal,     ///< incumbent proven optimal (within gap tolerances)
  kInfeasible,
  kUnbounded,
  kFeasible,    ///< limit or target cutoff hit; incumbent available
  kNoSolution,  ///< limit hit before any incumbent was found
  kFutile,      ///< proven: no solution as good as `futile_bound` exists
  kNumericError,
};

const char* to_string(MilpStatus status);

struct MilpOptions {
  SimplexOptions lp;
  /// Run the presolve reductions (presolve.hpp) before solving; the
  /// returned solution is lifted back to the original variable space.
  bool presolve = false;
  double int_tol = 1e-6;        ///< integrality tolerance
  double gap_abs = 1e-9;        ///< absolute optimality gap
  double gap_rel = 1e-9;        ///< relative optimality gap
  std::int64_t max_nodes = -1;  ///< <0: unlimited
  double time_limit_s = -1.0;   ///< <=0: unlimited
  bool rounding_heuristic = true;
  int rounding_period = 16;     ///< try fix-and-round every k nodes

  /// Decision-problem accelerators (both in the model's original sense,
  /// NaN = disabled). `target_obj`: stop as soon as an incumbent at least
  /// this good exists (status kFeasible). `futile_bound`: stop as soon as
  /// it is proven that no solution at least this good exists (status
  /// kFutile, with best_bound carrying the proof).
  double target_obj = std::numeric_limits<double>::quiet_NaN();
  double futile_bound = std::numeric_limits<double>::quiet_NaN();
};

struct MilpResult {
  MilpStatus status = MilpStatus::kNoSolution;
  double objective = 0.0;    ///< incumbent objective (original sense)
  std::vector<double> x;     ///< incumbent point (integers snapped)
  double best_bound = 0.0;   ///< proven bound on the optimum (original sense)
  std::int64_t nodes = 0;
  std::int64_t lp_iterations = 0;
  double seconds = 0.0;

  bool has_solution() const {
    return status == MilpStatus::kOptimal || status == MilpStatus::kFeasible;
  }
  /// Relative gap between incumbent and proven bound (0 when optimal).
  double gap() const;
};

/// Solves a MILP (also accepts pure LPs, where it reduces to one solve).
MilpResult solve_milp(const Model& model, const MilpOptions& options = {});

}  // namespace elrr::lp
