#pragma once

/// \file presolve.hpp
/// LP/MILP presolve: cheap, exactness-preserving model reductions
/// applied to fixpoint before the simplex/branch&bound see the problem.
///
///  * empty rows       -> feasibility check, drop;
///  * singleton rows   -> column-bound tightening (rounded for integer
///                        columns), drop;
///  * fixed columns    -> substituted into every row and the objective.
///
/// The reduced model solves to the same optimum (modulo the reported
/// objective offset), and `lift` maps a reduced-space solution back to
/// the original variable space. Infeasibility can be detected outright.
///
/// The RR MILPs profit mostly through their pinned columns (r(0) = 0,
/// sigma(0) = 0) and the trivially-bounded rows the chain cuts leave
/// behind; the pass is available standalone and through
/// `MilpOptions::presolve`.

#include <vector>

#include "lp/model.hpp"

namespace elrr::lp {

struct Presolved {
  bool infeasible = false;  ///< proven infeasible during reduction
  Model reduced;            ///< equivalent smaller model (unless infeasible)
  double obj_offset = 0.0;  ///< add to the reduced optimum
  int rows_removed = 0;
  int cols_removed = 0;

  /// Per original column: index in `reduced`, or -1 when eliminated.
  std::vector<int> col_map;
  /// Value of each eliminated (fixed) column.
  std::vector<double> fixed_value;
  /// Per original row: index in `reduced`, or -1 when eliminated.
  /// Lets a session translate later row-bound changes into the cached
  /// reduced model instead of re-running presolve (see session.hpp).
  std::vector<int> row_map;

  /// Lifts a reduced-space point back to the original space.
  std::vector<double> lift(const std::vector<double>& x_reduced) const;
};

/// Runs the reductions to fixpoint. `feas_tol` guards the empty-row and
/// empty-domain checks.
Presolved presolve(const Model& model, double feas_tol = 1e-9);

}  // namespace elrr::lp
