#pragma once

/// \file model.hpp
/// LP/MILP modeling layer. A model is a list of bounded columns
/// (variables, optionally integer) and bounded rows (linear constraints
/// L <= a.x <= U). This is the interface the DAC'09 formulations
/// (MIN_CYC / MAX_THR) are built on; the paper used CPLEX, ElasticRR ships
/// its own solver (see simplex.hpp / milp.hpp).

#include <limits>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace elrr::lp {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class Sense { kMinimize, kMaximize };

struct ColEntry {
  int col = 0;
  double coef = 0.0;
};

struct Column {
  double lo = 0.0;
  double hi = kInf;
  double obj = 0.0;
  bool is_integer = false;
  std::string name;
};

struct Row {
  double lo = -kInf;
  double hi = kInf;
  std::vector<ColEntry> entries;
  std::string name;
};

/// A mixed-integer linear program.
class Model {
 public:
  Sense sense() const { return sense_; }
  void set_sense(Sense s) { sense_ = s; }

  /// Adds a variable with bounds [lo, hi] and objective coefficient obj.
  int add_col(double lo, double hi, double obj, bool is_integer = false,
              std::string name = {});

  /// Adds a constraint lo <= sum(entries) <= hi. Duplicate column indices
  /// within one row are merged by summing coefficients.
  int add_row(double lo, double hi, std::vector<ColEntry> entries,
              std::string name = {});

  void set_col_bounds(int col, double lo, double hi);
  void set_row_bounds(int row, double lo, double hi);
  void set_obj(int col, double coef);

  int num_cols() const { return static_cast<int>(cols_.size()); }
  int num_rows() const { return static_cast<int>(rows_.size()); }
  const Column& col(int j) const { return cols_[static_cast<std::size_t>(j)]; }
  const Row& row(int i) const { return rows_[static_cast<std::size_t>(i)]; }

  bool has_integers() const;

  /// Structural checks: finite coefficients, consistent bounds, indices in
  /// range. Throws InvalidInputError on violation.
  void validate() const;

  /// Objective value of a given point (no feasibility check).
  double objective_value(const std::vector<double>& x) const;

  /// Maximum row-activity violation and integrality violation of a point;
  /// used by tests and by the solvers' postconditions.
  double max_infeasibility(const std::vector<double>& x) const;

  /// CPLEX LP-format-like rendering for debugging small models.
  std::string to_lp_format() const;

 private:
  Sense sense_ = Sense::kMinimize;
  std::vector<Column> cols_;
  std::vector<Row> rows_;
};

}  // namespace elrr::lp
