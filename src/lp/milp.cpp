#include "lp/milp.hpp"

#include "lp/presolve.hpp"
#include "lp/session.hpp"

#include <algorithm>
#include <cmath>

#include "support/failpoint.hpp"
#include "support/stopwatch.hpp"

namespace elrr::lp {

const char* to_string(MilpStatus status) {
  switch (status) {
    case MilpStatus::kOptimal: return "optimal";
    case MilpStatus::kInfeasible: return "infeasible";
    case MilpStatus::kUnbounded: return "unbounded";
    case MilpStatus::kFeasible: return "feasible";
    case MilpStatus::kNoSolution: return "no-solution";
    case MilpStatus::kFutile: return "futile";
    case MilpStatus::kNumericError: return "numeric-error";
  }
  return "unknown";
}

double MilpResult::gap() const {
  if (!has_solution()) return kInf;
  const double denom = std::max(1.0, std::abs(objective));
  return std::abs(objective - best_bound) / denom;
}

namespace detail {

MilpResult solve_milp_impl(const Model& model, const MilpOptions& options) {
  if (options.presolve) {
    const Presolved pre = presolve(model);
    MilpOptions inner = options;
    inner.presolve = false;
    if (pre.infeasible) {
      MilpResult result;
      result.status = MilpStatus::kInfeasible;
      return result;
    }
    // Cutoffs live in objective space; shift them into the reduced one.
    if (std::isfinite(inner.target_obj)) inner.target_obj -= pre.obj_offset;
    if (std::isfinite(inner.futile_bound)) {
      inner.futile_bound -= pre.obj_offset;
    }
    MilpResult result;
    if (pre.reduced.num_cols() == 0) {
      // Everything was pinned; the offset is the whole objective.
      result.status = MilpStatus::kOptimal;
      result.nodes = 0;
    } else {
      result = solve_milp(pre.reduced, inner);
    }
    result.objective += pre.obj_offset;
    result.best_bound += pre.obj_offset;
    if (result.has_solution() || pre.reduced.num_cols() == 0) {
      result.x = pre.lift(result.x);
    }
    return result;
  }
  if (!model.has_integers()) {
    // Pure LP: single simplex solve, wrapped in the MILP result type.
    SimplexOptions lp_options = options.lp;
    if (options.time_limit_s > 0) {
      lp_options.time_limit_s =
          lp_options.time_limit_s > 0
              ? std::min(lp_options.time_limit_s, options.time_limit_s)
              : options.time_limit_s;
    }
    Stopwatch watch;
    SimplexSolver solver(model, lp_options);
    const LpResult lp = solver.solve();
    MilpResult result;
    result.nodes = 1;
    result.lp_iterations = lp.iterations;
    result.seconds = watch.seconds();
    switch (lp.status) {
      case LpStatus::kOptimal:
        result.status = MilpStatus::kOptimal;
        result.objective = lp.objective;
        result.best_bound = lp.objective;
        result.x = lp.x;
        break;
      case LpStatus::kInfeasible:
        result.status = MilpStatus::kInfeasible;
        break;
      case LpStatus::kUnbounded:
        result.status = MilpStatus::kUnbounded;
        break;
      case LpStatus::kNumericError:
        result.status = MilpStatus::kNumericError;
        break;
      default:
        result.status = MilpStatus::kNoSolution;
        break;
    }
    return result;
  }
  // The branch-and-bound core lives in session.cpp (it is shared with
  // the warm-starting MilpSession); a null warm context is the
  // stateless fresh-engine path.
  return solve_branch_and_bound(model, options, nullptr);
}

}  // namespace detail

MilpResult solve_milp(const Model& model, const MilpOptions& options) {
  failpoint::trip("milp.solve");
  model.validate();
  return detail::solve_milp_impl(model, options);
}

}  // namespace elrr::lp
