#include "lp/milp.hpp"

#include "lp/presolve.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "support/failpoint.hpp"
#include "support/stopwatch.hpp"

namespace elrr::lp {

const char* to_string(MilpStatus status) {
  switch (status) {
    case MilpStatus::kOptimal: return "optimal";
    case MilpStatus::kInfeasible: return "infeasible";
    case MilpStatus::kUnbounded: return "unbounded";
    case MilpStatus::kFeasible: return "feasible";
    case MilpStatus::kNoSolution: return "no-solution";
    case MilpStatus::kFutile: return "futile";
    case MilpStatus::kNumericError: return "numeric-error";
  }
  return "unknown";
}

double MilpResult::gap() const {
  if (!has_solution()) return kInf;
  const double denom = std::max(1.0, std::abs(objective));
  return std::abs(objective - best_bound) / denom;
}

namespace {

struct BoundChange {
  int col;
  double lo;
  double hi;
};

struct Node {
  double bound;  ///< parent LP objective (internal minimize sense)
  int depth;
  std::vector<BoundChange> changes;
};

struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const {
    if (a.bound != b.bound) return a.bound > b.bound;  // min-heap on bound
    return a.depth < b.depth;                          // deeper first on ties
  }
};

class BranchAndBound {
 public:
  BranchAndBound(const Model& model, const MilpOptions& options)
      : model_(model),
        options_(options),
        flip_(model.sense() == Sense::kMaximize ? -1.0 : 1.0),
        deadline_(options.time_limit_s),
        engine_(model, options.lp) {
    for (int j = 0; j < model.num_cols(); ++j) {
      if (model.col(j).is_integer) int_cols_.push_back(j);
    }
  }

  MilpResult run() {
    Stopwatch watch;
    MilpResult result = search();
    result.seconds = watch.seconds();
    result.lp_iterations = engine_.total_iterations();
    return result;
  }

 private:
  /// Objective in internal (minimize) sense.
  double inner(const LpResult& r) const { return flip_ * r.objective; }

  void sync_engine_deadline() {
    double lp_limit = options_.lp.time_limit_s;
    if (!deadline_.unlimited()) {
      const double remaining = std::max(0.05, deadline_.remaining());
      lp_limit = lp_limit > 0 ? std::min(lp_limit, remaining) : remaining;
    }
    engine_.set_time_limit(lp_limit);
  }

  /// Tightened root bounds for integer columns (ceil/floor of LP
  /// bounds). False when some integer domain is empty (e.g. bounds
  /// (0.3, 0.8) contain no integer): the MILP is trivially infeasible.
  bool tighten_integer_bounds() {
    for (int j : int_cols_) {
      const Column& c = model_.col(j);
      const double lo = std::isfinite(c.lo) ? std::ceil(c.lo - options_.int_tol)
                                            : c.lo;
      const double hi = std::isfinite(c.hi)
                            ? std::floor(c.hi + options_.int_tol)
                            : c.hi;
      if (lo > hi) return false;
      root_lo_.push_back(lo);
      root_hi_.push_back(hi);
      engine_.set_col_bounds(j, lo, hi);
    }
    return true;
  }

  int most_fractional(const std::vector<double>& x) const {
    int best = -1;
    double best_frac = options_.int_tol;
    for (int j : int_cols_) {
      const double v = x[static_cast<std::size_t>(j)];
      const double frac = std::abs(v - std::round(v));
      if (frac > best_frac) {
        best_frac = frac;
        best = j;
      }
    }
    return best;
  }

  void update_incumbent(const LpResult& lp) {
    const double obj = inner(lp);
    if (has_incumbent_ && obj >= incumbent_obj_ - 1e-12) return;
    has_incumbent_ = true;
    incumbent_obj_ = obj;
    incumbent_x_ = lp.x;
    for (int j : int_cols_) {
      incumbent_x_[static_cast<std::size_t>(j)] =
          std::round(incumbent_x_[static_cast<std::size_t>(j)]);
    }
  }

  /// Fix-and-round primal heuristic: fix every integer column to a
  /// rounding of the node LP point (clamped to root bounds) and re-solve
  /// the continuous rest. Tried with nearest-rounding and with ceiling
  /// (the latter matters for covering-style models such as the retiming
  /// path constraints, where more buffers never hurt feasibility).
  void try_rounding(const std::vector<double>& x,
                    const SimplexSolver::State& root_state) {
    for (const bool use_ceil : {false, true}) {
      engine_.restore_state(root_state);
      for (std::size_t k = 0; k < int_cols_.size(); ++k) {
        const int j = int_cols_[k];
        const double raw = x[static_cast<std::size_t>(j)];
        double v = use_ceil ? std::ceil(raw - options_.int_tol)
                            : std::round(raw);
        v = std::min(std::max(v, root_lo_[k]), root_hi_[k]);
        engine_.set_col_bounds(j, v, v);
      }
      sync_engine_deadline();
      const LpResult lp = engine_.resolve();
      if (lp.status == LpStatus::kOptimal) update_incumbent(lp);
    }
  }

  bool should_prune(double bound) const {
    if (!has_incumbent_) return false;
    const double slack = std::max(options_.gap_abs,
                                  std::abs(incumbent_obj_) * options_.gap_rel);
    return bound >= incumbent_obj_ - slack;
  }

  MilpResult search() {
    MilpResult result;
    // Decision-problem cutoffs in internal (minimize) sense.
    const double target_inner = std::isnan(options_.target_obj)
                                    ? -kInf
                                    : flip_ * options_.target_obj;
    const double futile_inner = std::isnan(options_.futile_bound)
                                    ? kInf
                                    : flip_ * options_.futile_bound;
    if (!tighten_integer_bounds()) {
      result.status = MilpStatus::kInfeasible;
      return result;
    }
    sync_engine_deadline();

    LpResult root = engine_.solve();
    if (root.status == LpStatus::kInfeasible) {
      result.status = MilpStatus::kInfeasible;
      return result;
    }
    if (root.status == LpStatus::kUnbounded) {
      result.status = MilpStatus::kUnbounded;
      return result;
    }
    if (root.status != LpStatus::kOptimal) {
      result.status = root.status == LpStatus::kNumericError
                          ? MilpStatus::kNumericError
                          : MilpStatus::kNoSolution;
      return result;
    }

    const SimplexSolver::State root_state = engine_.save_state();
    double unresolved_bound = kInf;  // bounds of nodes we failed to process

    std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
    open.push(Node{inner(root), 0, {}});

    bool hit_limit = false;
    bool hit_target = false;
    bool proven_futile = false;
    double futile_proof = kInf;
    while (!open.empty()) {
      if (deadline_.expired() ||
          (options_.max_nodes >= 0 && result.nodes >= options_.max_nodes)) {
        hit_limit = true;
        break;
      }
      if (has_incumbent_ && incumbent_obj_ <= target_inner) {
        hit_target = true;
        break;
      }
      // Best-first order: the top node's bound is the global lower bound
      // (unresolved nodes keep their bound alive in unresolved_bound).
      const double global_bound = std::min(open.top().bound, unresolved_bound);
      if (global_bound > futile_inner &&
          (!has_incumbent_ || incumbent_obj_ > futile_inner)) {
        proven_futile = true;
        futile_proof = global_bound;
        break;
      }
      Node node = open.top();
      open.pop();
      if (should_prune(node.bound)) continue;  // bound inherited from parent
      ++result.nodes;

      // Replay the node's bound changes on top of the root basis.
      engine_.restore_state(root_state);
      std::vector<double> eff_lo = root_lo_;
      std::vector<double> eff_hi = root_hi_;
      for (const auto& change : node.changes) {
        engine_.set_col_bounds(change.col, change.lo, change.hi);
        for (std::size_t k = 0; k < int_cols_.size(); ++k) {
          if (int_cols_[k] == change.col) {
            eff_lo[k] = change.lo;
            eff_hi[k] = change.hi;
          }
        }
      }
      sync_engine_deadline();
      LpResult lp = engine_.resolve();
      if (lp.status == LpStatus::kInfeasible) continue;
      if (lp.status != LpStatus::kOptimal) {
        // Could not resolve this node (limits / numerics): its subtree
        // remains unexplored, so its bound must survive in best_bound.
        unresolved_bound = std::min(unresolved_bound, node.bound);
        if (deadline_.expired()) {
          hit_limit = true;
          break;
        }
        continue;
      }
      const double bound = inner(lp);
      if (should_prune(bound)) continue;

      const int branch_col = most_fractional(lp.x);
      if (branch_col < 0) {
        update_incumbent(lp);
        continue;
      }

      if (options_.rounding_heuristic &&
          (result.nodes == 1 ||
           (options_.rounding_period > 0 &&
            result.nodes % options_.rounding_period == 0))) {
        const std::vector<double> x_node = lp.x;
        try_rounding(x_node, root_state);
        if (should_prune(bound)) continue;
        // The engine state was clobbered by the heuristic but children only
        // need the recorded bound changes, so nothing to restore here.
        lp.x = x_node;
      }

      const double v = lp.x[static_cast<std::size_t>(branch_col)];
      double cur_lo = kInf, cur_hi = -kInf;
      for (std::size_t k = 0; k < int_cols_.size(); ++k) {
        if (int_cols_[k] == branch_col) {
          cur_lo = eff_lo[k];
          cur_hi = eff_hi[k];
        }
      }
      const double down_hi = std::floor(v);
      const double up_lo = std::ceil(v);
      if (down_hi >= cur_lo) {
        Node child{bound, node.depth + 1, node.changes};
        child.changes.push_back({branch_col, cur_lo, down_hi});
        open.push(std::move(child));
      }
      if (up_lo <= cur_hi) {
        Node child{bound, node.depth + 1, node.changes};
        child.changes.push_back({branch_col, up_lo, cur_hi});
        open.push(std::move(child));
      }
    }

    // Assemble the final answer.
    if (proven_futile) {
      result.status = MilpStatus::kFutile;
      result.best_bound = flip_ * futile_proof;
      if (has_incumbent_) {
        result.objective = flip_ * incumbent_obj_;
        result.x = incumbent_x_;
      }
      return result;
    }
    double open_bound = unresolved_bound;
    while (!open.empty()) {
      open_bound = std::min(open_bound, open.top().bound);
      open.pop();
    }
    const bool proven = !hit_limit && !hit_target && open_bound == kInf;

    if (has_incumbent_) {
      result.objective = flip_ * incumbent_obj_;
      result.x = incumbent_x_;
      const double inner_bound =
          proven ? incumbent_obj_ : std::min(open_bound, incumbent_obj_);
      result.best_bound = flip_ * inner_bound;
      result.status = proven ? MilpStatus::kOptimal : MilpStatus::kFeasible;
    } else if (proven) {
      result.status = MilpStatus::kInfeasible;
    } else {
      result.status = MilpStatus::kNoSolution;
      result.best_bound = open_bound == kInf ? flip_ * inner(root)
                                             : flip_ * open_bound;
    }
    return result;
  }

  const Model& model_;
  MilpOptions options_;
  double flip_;
  Deadline deadline_;
  SimplexSolver engine_;
  std::vector<int> int_cols_;
  std::vector<double> root_lo_, root_hi_;  // tightened integer bounds

  bool has_incumbent_ = false;
  double incumbent_obj_ = kInf;
  std::vector<double> incumbent_x_;
};

}  // namespace

MilpResult solve_milp(const Model& model, const MilpOptions& options) {
  failpoint::trip("milp.solve");
  model.validate();
  if (options.presolve) {
    const Presolved pre = presolve(model);
    MilpOptions inner = options;
    inner.presolve = false;
    if (pre.infeasible) {
      MilpResult result;
      result.status = MilpStatus::kInfeasible;
      return result;
    }
    // Cutoffs live in objective space; shift them into the reduced one.
    if (std::isfinite(inner.target_obj)) inner.target_obj -= pre.obj_offset;
    if (std::isfinite(inner.futile_bound)) {
      inner.futile_bound -= pre.obj_offset;
    }
    MilpResult result;
    if (pre.reduced.num_cols() == 0) {
      // Everything was pinned; the offset is the whole objective.
      result.status = MilpStatus::kOptimal;
      result.nodes = 0;
    } else {
      result = solve_milp(pre.reduced, inner);
    }
    result.objective += pre.obj_offset;
    result.best_bound += pre.obj_offset;
    if (result.has_solution() || pre.reduced.num_cols() == 0) {
      result.x = pre.lift(result.x);
    }
    return result;
  }
  if (!model.has_integers()) {
    // Pure LP: single simplex solve, wrapped in the MILP result type.
    SimplexOptions lp_options = options.lp;
    if (options.time_limit_s > 0) {
      lp_options.time_limit_s =
          lp_options.time_limit_s > 0
              ? std::min(lp_options.time_limit_s, options.time_limit_s)
              : options.time_limit_s;
    }
    Stopwatch watch;
    SimplexSolver solver(model, lp_options);
    const LpResult lp = solver.solve();
    MilpResult result;
    result.nodes = 1;
    result.lp_iterations = lp.iterations;
    result.seconds = watch.seconds();
    switch (lp.status) {
      case LpStatus::kOptimal:
        result.status = MilpStatus::kOptimal;
        result.objective = lp.objective;
        result.best_bound = lp.objective;
        result.x = lp.x;
        break;
      case LpStatus::kInfeasible:
        result.status = MilpStatus::kInfeasible;
        break;
      case LpStatus::kUnbounded:
        result.status = MilpStatus::kUnbounded;
        break;
      case LpStatus::kNumericError:
        result.status = MilpStatus::kNumericError;
        break;
      default:
        result.status = MilpStatus::kNoSolution;
        break;
    }
    return result;
  }
  BranchAndBound solver(model, options);
  return solver.run();
}

}  // namespace elrr::lp
