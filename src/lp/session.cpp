#include "lp/session.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <queue>

#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "support/failpoint.hpp"
#include "support/stopwatch.hpp"

namespace elrr::lp {

namespace {

struct BoundChange {
  int col;
  double lo;
  double hi;
};

struct Node {
  double bound;  ///< parent LP objective (internal minimize sense)
  int depth;
  std::vector<BoundChange> changes;
};

struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const {
    if (a.bound != b.bound) return a.bound > b.bound;  // min-heap on bound
    return a.depth < b.depth;                          // deeper first on ties
  }
};

class BranchAndBound {
 public:
  BranchAndBound(const Model& model, const MilpOptions& options,
                 detail::WarmContext* warm)
      : model_(model),
        options_(options),
        flip_(model.sense() == Sense::kMaximize ? -1.0 : 1.0),
        deadline_(options.time_limit_s),
        warm_(warm),
        own_engine_(warm && warm->engine
                        ? std::nullopt
                        : std::optional<SimplexSolver>(std::in_place, model,
                                                       options.lp)),
        engine_(warm && warm->engine ? *warm->engine : *own_engine_) {
    for (int j = 0; j < model.num_cols(); ++j) {
      if (model.col(j).is_integer) int_cols_.push_back(j);
    }
  }

  MilpResult run() {
    Stopwatch watch;
    const std::int64_t iter_base = engine_.total_iterations();
    MilpResult result = search();
    result.seconds = watch.seconds();
    result.lp_iterations = engine_.total_iterations() - iter_base;
    return result;
  }

 private:
  /// Objective in internal (minimize) sense.
  double inner(const LpResult& r) const { return flip_ * r.objective; }

  void sync_engine_deadline() {
    double lp_limit = options_.lp.time_limit_s;
    if (!deadline_.unlimited()) {
      const double remaining = std::max(0.05, deadline_.remaining());
      lp_limit = lp_limit > 0 ? std::min(lp_limit, remaining) : remaining;
    }
    engine_.set_time_limit(lp_limit);
  }

  /// Tightened root bounds for integer columns (ceil/floor of LP
  /// bounds). False when some integer domain is empty (e.g. bounds
  /// (0.3, 0.8) contain no integer): the MILP is trivially infeasible.
  bool tighten_integer_bounds() {
    for (int j : int_cols_) {
      const Column& c = model_.col(j);
      const double lo = std::isfinite(c.lo) ? std::ceil(c.lo - options_.int_tol)
                                            : c.lo;
      const double hi = std::isfinite(c.hi)
                            ? std::floor(c.hi + options_.int_tol)
                            : c.hi;
      if (lo > hi) return false;
      root_lo_.push_back(lo);
      root_hi_.push_back(hi);
      engine_.set_col_bounds(j, lo, hi);
    }
    return true;
  }

  /// Re-imposes every current bound on the engine: the model's column
  /// bounds (root-tightened for integer columns) and row ranges. A
  /// borrowed persistent engine needs this both after restore_state
  /// (which clobbers lo_/hi_ with the snapshot's) and before a cold
  /// solve (a previous run leaves node bounds behind).
  void apply_current_bounds() {
    std::size_t k = 0;
    for (int j = 0; j < model_.num_cols(); ++j) {
      double lo = model_.col(j).lo;
      double hi = model_.col(j).hi;
      if (k < int_cols_.size() && int_cols_[k] == j) {
        lo = root_lo_[k];
        hi = root_hi_[k];
        ++k;
      }
      engine_.set_col_bounds(j, lo, hi);
    }
    for (int i = 0; i < model_.num_rows(); ++i) {
      engine_.set_row_bounds(i, model_.row(i).lo, model_.row(i).hi);
    }
  }

  /// Shape check before trusting a snapshot from a previous solve: a
  /// stale/corrupt state (wrong model, truncated vectors) falls back to
  /// the cold path instead of feeding garbage to the dual simplex.
  bool state_shape_ok(const SimplexSolver::State& s) const {
    const std::size_t total = static_cast<std::size_t>(model_.num_cols()) +
                              static_cast<std::size_t>(model_.num_rows());
    const std::size_t rows = static_cast<std::size_t>(model_.num_rows());
    return s.tab.size() == rows * total && s.basis.size() == rows &&
           s.where.size() == total && s.value.size() == total &&
           s.dj.size() == total && s.lo.size() == total &&
           s.hi.size() == total;
  }

  int most_fractional(const std::vector<double>& x) const {
    int best = -1;
    double best_frac = options_.int_tol;
    for (int j : int_cols_) {
      const double v = x[static_cast<std::size_t>(j)];
      const double frac = std::abs(v - std::round(v));
      if (frac > best_frac) {
        best_frac = frac;
        best = j;
      }
    }
    return best;
  }

  void update_incumbent(const LpResult& lp) {
    const double obj = inner(lp);
    if (has_incumbent_ && obj >= incumbent_obj_ - 1e-12) return;
    has_incumbent_ = true;
    incumbent_obj_ = obj;
    incumbent_x_ = lp.x;
    for (int j : int_cols_) {
      incumbent_x_[static_cast<std::size_t>(j)] =
          std::round(incumbent_x_[static_cast<std::size_t>(j)]);
    }
  }

  /// Fix-and-round primal heuristic: fix every integer column to a
  /// rounding of the node LP point (clamped to root bounds) and re-solve
  /// the continuous rest. Tried with nearest-rounding and with ceiling
  /// (the latter matters for covering-style models such as the retiming
  /// path constraints, where more buffers never hurt feasibility).
  void try_rounding(const std::vector<double>& x,
                    const SimplexSolver::State& root_state) {
    for (const bool use_ceil : {false, true}) {
      engine_.restore_state(root_state);
      for (std::size_t k = 0; k < int_cols_.size(); ++k) {
        const int j = int_cols_[k];
        const double raw = x[static_cast<std::size_t>(j)];
        double v = use_ceil ? std::ceil(raw - options_.int_tol)
                            : std::round(raw);
        v = std::min(std::max(v, root_lo_[k]), root_hi_[k]);
        engine_.set_col_bounds(j, v, v);
      }
      sync_engine_deadline();
      const LpResult lp = engine_.resolve();
      if (lp.status == LpStatus::kOptimal) update_incumbent(lp);
    }
  }

  /// Warm incumbent seed: fix the integer columns to the previous
  /// solve's solution (clamped to the current root bounds) and price
  /// the continuous rest. One dual resolve; on success the search
  /// starts with a finite cutoff instead of discovering one node by
  /// node.
  void try_seed(const std::vector<double>& x,
                const SimplexSolver::State& root_state) {
    engine_.restore_state(root_state);
    for (std::size_t k = 0; k < int_cols_.size(); ++k) {
      const int j = int_cols_[k];
      double v = std::round(x[static_cast<std::size_t>(j)]);
      v = std::min(std::max(v, root_lo_[k]), root_hi_[k]);
      engine_.set_col_bounds(j, v, v);
    }
    sync_engine_deadline();
    const LpResult lp = engine_.resolve();
    if (lp.status == LpStatus::kOptimal) {
      update_incumbent(lp);
      if (warm_) warm_->incumbent_seeded = has_incumbent_;
    }
  }

  bool should_prune(double bound) const {
    if (!has_incumbent_) return false;
    const double slack = std::max(options_.gap_abs,
                                  std::abs(incumbent_obj_) * options_.gap_rel);
    return bound >= incumbent_obj_ - slack;
  }

  MilpResult search() {
    MilpResult result;
    // Decision-problem cutoffs in internal (minimize) sense.
    const double target_inner = std::isnan(options_.target_obj)
                                    ? -kInf
                                    : flip_ * options_.target_obj;
    const double futile_inner = std::isnan(options_.futile_bound)
                                    ? kInf
                                    : flip_ * options_.futile_bound;
    if (!tighten_integer_bounds()) {
      result.status = MilpStatus::kInfeasible;
      return result;
    }

    const bool borrowed = warm_ && warm_->engine;
    LpResult root;
    bool have_root = false;
    if (borrowed && warm_->root_state) {
      if (state_shape_ok(*warm_->root_state)) {
        try {
          failpoint::trip("milp.warm");
          engine_.restore_state(*warm_->root_state);
          apply_current_bounds();
          sync_engine_deadline();
          root = engine_.resolve();
          have_root = true;
          warm_->warm_root_used = true;
        } catch (const failpoint::FailPointError&) {
          warm_->failpoint_fallback = true;
        }
      } else {
        warm_->failpoint_fallback = true;
      }
    }
    if (!have_root) {
      // Cold start. build_initial_basis resets the tableau, basis and
      // pivot-rule state from the problem data alone, so this path is
      // bit-identical to a fresh engine -- but a borrowed engine still
      // carries the previous run's node bounds, which must go first.
      if (borrowed) apply_current_bounds();
      sync_engine_deadline();
      root = engine_.solve();
    }
    if (root.status == LpStatus::kInfeasible) {
      result.status = MilpStatus::kInfeasible;
      return result;
    }
    if (root.status == LpStatus::kUnbounded) {
      result.status = MilpStatus::kUnbounded;
      return result;
    }
    if (root.status != LpStatus::kOptimal) {
      result.status = root.status == LpStatus::kNumericError
                          ? MilpStatus::kNumericError
                          : MilpStatus::kNoSolution;
      return result;
    }

    const SimplexSolver::State root_state = engine_.save_state();
    if (warm_ && warm_->root_state_out) {
      *warm_->root_state_out = root_state;
      warm_->root_state_written = true;
    }
    if (warm_ && warm_->seed_incumbent && warm_->incumbent &&
        warm_->incumbent->size() ==
            static_cast<std::size_t>(model_.num_cols())) {
      try_seed(*warm_->incumbent, root_state);
    }
    double unresolved_bound = kInf;  // bounds of nodes we failed to process

    std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
    open.push(Node{inner(root), 0, {}});

    bool hit_limit = false;
    bool hit_target = false;
    bool proven_futile = false;
    double futile_proof = kInf;
    while (!open.empty()) {
      if (deadline_.expired() ||
          (options_.max_nodes >= 0 && result.nodes >= options_.max_nodes)) {
        hit_limit = true;
        break;
      }
      if (has_incumbent_ && incumbent_obj_ <= target_inner) {
        hit_target = true;
        break;
      }
      // Best-first order: the top node's bound is the global lower bound
      // (unresolved nodes keep their bound alive in unresolved_bound).
      const double global_bound = std::min(open.top().bound, unresolved_bound);
      if (global_bound > futile_inner &&
          (!has_incumbent_ || incumbent_obj_ > futile_inner)) {
        proven_futile = true;
        futile_proof = global_bound;
        break;
      }
      Node node = open.top();
      open.pop();
      if (should_prune(node.bound)) continue;  // bound inherited from parent
      ++result.nodes;

      // Replay the node's bound changes on top of the root basis.
      engine_.restore_state(root_state);
      std::vector<double> eff_lo = root_lo_;
      std::vector<double> eff_hi = root_hi_;
      for (const auto& change : node.changes) {
        engine_.set_col_bounds(change.col, change.lo, change.hi);
        for (std::size_t k = 0; k < int_cols_.size(); ++k) {
          if (int_cols_[k] == change.col) {
            eff_lo[k] = change.lo;
            eff_hi[k] = change.hi;
          }
        }
      }
      sync_engine_deadline();
      LpResult lp = engine_.resolve();
      if (lp.status == LpStatus::kInfeasible) continue;
      if (lp.status != LpStatus::kOptimal) {
        // Could not resolve this node (limits / numerics): its subtree
        // remains unexplored, so its bound must survive in best_bound.
        unresolved_bound = std::min(unresolved_bound, node.bound);
        if (deadline_.expired()) {
          hit_limit = true;
          break;
        }
        continue;
      }
      const double bound = inner(lp);
      if (should_prune(bound)) continue;

      const int branch_col = most_fractional(lp.x);
      if (branch_col < 0) {
        update_incumbent(lp);
        continue;
      }

      if (options_.rounding_heuristic &&
          (result.nodes == 1 ||
           (options_.rounding_period > 0 &&
            result.nodes % options_.rounding_period == 0))) {
        const std::vector<double> x_node = lp.x;
        try_rounding(x_node, root_state);
        if (should_prune(bound)) continue;
        // The engine state was clobbered by the heuristic but children only
        // need the recorded bound changes, so nothing to restore here.
        lp.x = x_node;
      }

      const double v = lp.x[static_cast<std::size_t>(branch_col)];
      double cur_lo = kInf, cur_hi = -kInf;
      for (std::size_t k = 0; k < int_cols_.size(); ++k) {
        if (int_cols_[k] == branch_col) {
          cur_lo = eff_lo[k];
          cur_hi = eff_hi[k];
        }
      }
      const double down_hi = std::floor(v);
      const double up_lo = std::ceil(v);
      if (down_hi >= cur_lo) {
        Node child{bound, node.depth + 1, node.changes};
        child.changes.push_back({branch_col, cur_lo, down_hi});
        open.push(std::move(child));
      }
      if (up_lo <= cur_hi) {
        Node child{bound, node.depth + 1, node.changes};
        child.changes.push_back({branch_col, up_lo, cur_hi});
        open.push(std::move(child));
      }
    }

    // Assemble the final answer.
    if (proven_futile) {
      result.status = MilpStatus::kFutile;
      result.best_bound = flip_ * futile_proof;
      if (has_incumbent_) {
        result.objective = flip_ * incumbent_obj_;
        result.x = incumbent_x_;
      }
      return result;
    }
    double open_bound = unresolved_bound;
    while (!open.empty()) {
      open_bound = std::min(open_bound, open.top().bound);
      open.pop();
    }
    const bool proven = !hit_limit && !hit_target && open_bound == kInf;

    if (has_incumbent_) {
      result.objective = flip_ * incumbent_obj_;
      result.x = incumbent_x_;
      const double inner_bound =
          proven ? incumbent_obj_ : std::min(open_bound, incumbent_obj_);
      result.best_bound = flip_ * inner_bound;
      result.status = proven ? MilpStatus::kOptimal : MilpStatus::kFeasible;
    } else if (proven) {
      result.status = MilpStatus::kInfeasible;
    } else {
      result.status = MilpStatus::kNoSolution;
      result.best_bound = open_bound == kInf ? flip_ * inner(root)
                                             : flip_ * open_bound;
    }
    return result;
  }

  const Model& model_;
  MilpOptions options_;
  double flip_;
  Deadline deadline_;
  detail::WarmContext* warm_;
  std::optional<SimplexSolver> own_engine_;
  SimplexSolver& engine_;
  std::vector<int> int_cols_;
  std::vector<double> root_lo_, root_hi_;  // tightened integer bounds

  bool has_incumbent_ = false;
  double incumbent_obj_ = kInf;
  std::vector<double> incumbent_x_;
};

}  // namespace

namespace detail {

MilpResult solve_branch_and_bound(const Model& model,
                                  const MilpOptions& options,
                                  WarmContext* warm) {
  BranchAndBound solver(model, options, warm);
  return solver.run();
}

}  // namespace detail

// ---------------------------------------------------------------- session

struct MilpSession::PresolveCache {
  Presolved pre;
  /// Per original row: total fixed-column substitution shift at the
  /// time presolve ran (reduced bounds = original bounds - shift).
  std::vector<double> row_shift;
  std::unique_ptr<MilpSession> reduced_session;
  bool valid = false;
};

MilpSession::MilpSession(Model model, MilpOptions options)
    : model_(std::move(model)), options_(options) {
  model_.validate();
}

MilpSession::~MilpSession() = default;

void MilpSession::set_row_bounds(int row, double lo, double hi) {
  model_.set_row_bounds(row, lo, hi);
  if (engine_) engine_->set_row_bounds(row, lo, hi);
  if (pre_ && pre_->valid && !translate_row_change(row, lo, hi)) {
    pre_->valid = false;  // touched an eliminated row: re-presolve lazily
  }
}

void MilpSession::set_col_bounds(int col, double lo, double hi) {
  model_.set_col_bounds(col, lo, hi);
  if (engine_) engine_->set_col_bounds(col, lo, hi);
  if (pre_ && pre_->valid && !translate_col_change(col, lo, hi)) {
    pre_->valid = false;
  }
}

void MilpSession::set_cutoffs(double target_obj, double futile_bound) {
  options_.target_obj = target_obj;
  options_.futile_bound = futile_bound;
}

void MilpSession::set_time_limit(double seconds) {
  options_.time_limit_s = seconds;
}

void MilpSession::invalidate_warm() {
  root_state_.reset();
  last_x_.clear();
  has_last_x_ = false;
  if (pre_ && pre_->reduced_session) pre_->reduced_session->invalidate_warm();
}

bool MilpSession::translate_row_change(int row, double lo, double hi) {
  const int mapped = pre_->pre.row_map[static_cast<std::size_t>(row)];
  if (mapped < 0) return false;  // row was reduced away (empty/singleton)
  if (!pre_->reduced_session) return false;
  const double shift = pre_->row_shift[static_cast<std::size_t>(row)];
  const double lo_r = std::isfinite(lo) ? lo - shift : lo;
  const double hi_r = std::isfinite(hi) ? hi - shift : hi;
  if (lo_r > hi_r) return false;  // shift emptied the range: recompute
  pre_->reduced_session->set_row_bounds(mapped, lo_r, hi_r);
  return true;
}

bool MilpSession::translate_col_change(int /*col*/, double /*lo*/,
                                       double /*hi*/) {
  // A surviving column's reduced bounds may include singleton-row
  // tightenings that the user's new bounds would silently discard, and
  // an eliminated column's fixed value may no longer hold. Re-presolve
  // rather than risk either. (The Pareto walks only move row bounds, so
  // this conservatism costs nothing on the hot path.)
  return false;
}

void MilpSession::ensure_engine() {
  if (!engine_) {
    engine_ = std::make_unique<SimplexSolver>(model_, options_.lp);
  }
}

MilpResult MilpSession::solve() {
  failpoint::trip("milp.solve");
  OBS_SPAN("milp.solve");
  // Flight-recorder lifecycle mark: a postmortem of a process that died
  // inside the solver shows how deep into the session it was.
  obs::rec::event("milp.solve",
                  static_cast<std::uint64_t>(stats_.solves + 1));
  ++stats_.solves;
  const std::int64_t cold_before = stats_.cold_solves;
  Stopwatch watch;
  MilpResult result =
      options_.presolve ? solve_presolved() : solve_direct();
  stats_.solve_seconds += watch.seconds();
  // Warm vs cold is decided inside the solve paths; read it back off
  // the stats delta so the trace counters agree with SessionStats.
  obs::count(stats_.cold_solves > cold_before ? "milp.solve.cold"
                                              : "milp.solve.warm");
  stats_.nodes += result.nodes;
  stats_.lp_iterations += result.lp_iterations;
  if (result.has_solution()) {
    last_x_ = result.x;
    has_last_x_ = true;
  }
  return result;
}

MilpResult MilpSession::solve_direct() {
  MilpOptions opts = options_;
  opts.presolve = false;

  if (!model_.has_integers()) {
    // Pure LP. Warm = keep the engine and let the dual simplex
    // re-optimize after the bound changes; cold = the stateless path.
    if (!warm_) {
      ++stats_.cold_solves;
      return detail::solve_milp_impl(model_, opts);
    }
    const bool first = !engine_;
    ensure_engine();
    double lp_limit = opts.lp.time_limit_s;
    if (opts.time_limit_s > 0) {
      lp_limit = lp_limit > 0 ? std::min(lp_limit, opts.time_limit_s)
                              : opts.time_limit_s;
    }
    engine_->set_time_limit(lp_limit);
    Stopwatch watch;
    const std::int64_t iter_base = engine_->total_iterations();
    LpResult lp;
    bool solved = false;
    if (!first) {
      ++stats_.warm_attempts;
      try {
        failpoint::trip("milp.warm");
        OBS_SPAN("milp.warm");
        lp = engine_->resolve();
        solved = true;
        ++stats_.warm_roots;
      } catch (const failpoint::FailPointError&) {
        ++stats_.warm_fallbacks;
      }
    }
    if (!solved) {
      lp = engine_->solve();
      ++stats_.cold_solves;
    }
    MilpResult result;
    result.nodes = 1;
    result.lp_iterations = engine_->total_iterations() - iter_base;
    result.seconds = watch.seconds();
    switch (lp.status) {
      case LpStatus::kOptimal:
        result.status = MilpStatus::kOptimal;
        result.objective = lp.objective;
        result.best_bound = lp.objective;
        result.x = lp.x;
        break;
      case LpStatus::kInfeasible:
        result.status = MilpStatus::kInfeasible;
        break;
      case LpStatus::kUnbounded:
        result.status = MilpStatus::kUnbounded;
        break;
      case LpStatus::kNumericError:
        result.status = MilpStatus::kNumericError;
        break;
      default:
        result.status = MilpStatus::kNoSolution;
        break;
    }
    return result;
  }

  if (!warm_) {
    ++stats_.cold_solves;
    return detail::solve_milp_impl(model_, opts);
  }
  ensure_engine();
  detail::WarmContext ctx;
  ctx.engine = engine_.get();
  ctx.root_state = root_state_.get();
  ctx.incumbent = has_last_x_ ? &last_x_ : nullptr;
  ctx.seed_incumbent = seed_incumbent_;
  SimplexSolver::State new_root;
  ctx.root_state_out = &new_root;
  if (ctx.root_state) ++stats_.warm_attempts;
  MilpResult result = detail::solve_branch_and_bound(model_, opts, &ctx);
  if (ctx.warm_root_used) {
    ++stats_.warm_roots;
  } else if (ctx.failpoint_fallback) {
    ++stats_.warm_fallbacks;
  } else if (!ctx.root_state) {
    ++stats_.cold_solves;
  }
  if (ctx.incumbent_seeded) ++stats_.warm_seeds;
  if (ctx.root_state_written) {
    root_state_ =
        std::make_unique<SimplexSolver::State>(std::move(new_root));
  }
  return result;
}

MilpResult MilpSession::solve_presolved() {
  if (!pre_ || !pre_->valid) {
    pre_ = std::make_unique<PresolveCache>();
    pre_->pre = presolve(model_);
    ++stats_.presolves;
    pre_->row_shift.assign(static_cast<std::size_t>(model_.num_rows()), 0.0);
    if (!pre_->pre.infeasible) {
      for (int i = 0; i < model_.num_rows(); ++i) {
        double shift = 0.0;
        for (const ColEntry& entry : model_.row(i).entries) {
          const std::size_t j = static_cast<std::size_t>(entry.col);
          if (pre_->pre.col_map[j] < 0) {
            shift += entry.coef * pre_->pre.fixed_value[j];
          }
        }
        pre_->row_shift[static_cast<std::size_t>(i)] = shift;
      }
      if (pre_->pre.reduced.num_cols() > 0) {
        MilpOptions inner = options_;
        inner.presolve = false;
        pre_->reduced_session =
            std::make_unique<MilpSession>(pre_->pre.reduced, inner);
      }
    }
    pre_->valid = true;
  }
  const Presolved& pre = pre_->pre;
  if (pre.infeasible) {
    // Later bound changes may cure the infeasibility: recompute then.
    pre_->valid = false;
    MilpResult result;
    result.status = MilpStatus::kInfeasible;
    return result;
  }
  MilpResult result;
  if (pre.reduced.num_cols() == 0) {
    // Everything was pinned; the offset is the whole objective.
    result.status = MilpStatus::kOptimal;
    result.nodes = 0;
  } else {
    MilpSession& inner = *pre_->reduced_session;
    inner.set_warm(warm_);
    inner.set_seed_incumbent(seed_incumbent_);
    // Cutoffs live in objective space; shift them into the reduced one.
    inner.set_cutoffs(std::isfinite(options_.target_obj)
                          ? options_.target_obj - pre.obj_offset
                          : options_.target_obj,
                      std::isfinite(options_.futile_bound)
                          ? options_.futile_bound - pre.obj_offset
                          : options_.futile_bound);
    inner.set_time_limit(options_.time_limit_s);
    result = inner.solve();
  }
  result.objective += pre.obj_offset;
  result.best_bound += pre.obj_offset;
  if (result.has_solution() || pre.reduced.num_cols() == 0) {
    result.x = pre.lift(result.x);
  }
  return result;
}

}  // namespace elrr::lp
