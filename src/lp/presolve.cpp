#include "lp/presolve.hpp"

#include <cmath>

#include "support/error.hpp"

namespace elrr::lp {

namespace {

/// Working copy of the model with erasure flags.
struct Work {
  std::vector<Column> cols;
  std::vector<Row> rows;
  std::vector<bool> col_dead;
  std::vector<bool> row_dead;
  double obj_offset = 0.0;
};

/// Tightens column j to [lo, hi] (intersection); returns false when the
/// domain empties.
bool tighten(Work& w, int j, double lo, double hi, double tol) {
  Column& col = w.cols[static_cast<std::size_t>(j)];
  if (col.is_integer) {
    if (std::isfinite(lo)) lo = std::ceil(lo - tol);
    if (std::isfinite(hi)) hi = std::floor(hi + tol);
  }
  col.lo = std::max(col.lo, lo);
  col.hi = std::min(col.hi, hi);
  return col.lo <= col.hi + tol;
}

/// Substitutes the fixed column j = v into all rows and the objective.
void substitute(Work& w, int j, double v) {
  Column& col = w.cols[static_cast<std::size_t>(j)];
  w.obj_offset += col.obj * v;
  for (std::size_t i = 0; i < w.rows.size(); ++i) {
    if (w.row_dead[i]) continue;
    Row& row = w.rows[i];
    for (std::size_t k = 0; k < row.entries.size(); ++k) {
      if (row.entries[k].col != j) continue;
      const double shift = row.entries[k].coef * v;
      if (std::isfinite(row.lo)) row.lo -= shift;
      if (std::isfinite(row.hi)) row.hi -= shift;
      row.entries.erase(row.entries.begin() +
                        static_cast<std::ptrdiff_t>(k));
      break;  // Model::add_row merged duplicates already
    }
  }
  w.col_dead[static_cast<std::size_t>(j)] = true;
}

}  // namespace

std::vector<double> Presolved::lift(
    const std::vector<double>& x_reduced) const {
  std::vector<double> x(col_map.size(), 0.0);
  for (std::size_t j = 0; j < col_map.size(); ++j) {
    x[j] = col_map[j] >= 0
               ? x_reduced[static_cast<std::size_t>(col_map[j])]
               : fixed_value[j];
  }
  return x;
}

Presolved presolve(const Model& model, double feas_tol) {
  model.validate();
  Work w;
  for (int j = 0; j < model.num_cols(); ++j) w.cols.push_back(model.col(j));
  for (int i = 0; i < model.num_rows(); ++i) w.rows.push_back(model.row(i));
  w.col_dead.assign(w.cols.size(), false);
  w.row_dead.assign(w.rows.size(), false);

  Presolved out;
  out.col_map.assign(w.cols.size(), -1);
  out.fixed_value.assign(w.cols.size(), 0.0);
  out.row_map.assign(w.rows.size(), -1);

  const auto fail = [&] {
    out.infeasible = true;
    return out;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    // Fixed columns.
    for (std::size_t j = 0; j < w.cols.size(); ++j) {
      if (w.col_dead[j]) continue;
      const Column& col = w.cols[j];
      if (col.lo == col.hi) {
        if (col.is_integer &&
            std::abs(col.lo - std::round(col.lo)) > feas_tol) {
          return fail();  // pinned to a fractional value
        }
        out.fixed_value[j] = col.lo;
        substitute(w, static_cast<int>(j), col.lo);
        changed = true;
      }
    }
    // Empty and singleton rows.
    for (std::size_t i = 0; i < w.rows.size(); ++i) {
      if (w.row_dead[i]) continue;
      Row& row = w.rows[i];
      if (row.entries.empty()) {
        if (row.lo > feas_tol || row.hi < -feas_tol) return fail();
        w.row_dead[i] = true;
        changed = true;
        continue;
      }
      if (row.entries.size() == 1) {
        const ColEntry entry = row.entries[0];
        if (entry.coef == 0.0) {
          if (row.lo > feas_tol || row.hi < -feas_tol) return fail();
        } else {
          double lo = row.lo / entry.coef;
          double hi = row.hi / entry.coef;
          if (entry.coef < 0.0) std::swap(lo, hi);
          if (!tighten(w, entry.col, lo, hi, feas_tol)) return fail();
        }
        w.row_dead[i] = true;
        changed = true;
      }
    }
  }
  // Final domain check (tighten already guards, but fixed-integer
  // columns may have produced fractional pins).
  for (std::size_t j = 0; j < w.cols.size(); ++j) {
    if (w.col_dead[j]) continue;
    const Column& col = w.cols[j];
    if (col.lo > col.hi + feas_tol) return fail();
  }

  // Assemble the reduced model.
  out.reduced.set_sense(model.sense());
  out.obj_offset = w.obj_offset;
  for (std::size_t j = 0; j < w.cols.size(); ++j) {
    if (w.col_dead[j]) {
      ++out.cols_removed;
      continue;
    }
    const Column& col = w.cols[j];
    out.col_map[j] = out.reduced.add_col(col.lo, col.hi, col.obj,
                                         col.is_integer, col.name);
  }
  for (std::size_t i = 0; i < w.rows.size(); ++i) {
    if (w.row_dead[i]) {
      ++out.rows_removed;
      continue;
    }
    const Row& row = w.rows[i];
    std::vector<ColEntry> entries;
    for (const ColEntry& entry : row.entries) {
      const int mapped = out.col_map[static_cast<std::size_t>(entry.col)];
      ELRR_ASSERT(mapped >= 0, "entry references an eliminated column");
      entries.push_back({mapped, entry.coef});
    }
    out.row_map[i] =
        out.reduced.add_row(row.lo, row.hi, std::move(entries), row.name);
  }
  return out;
}

}  // namespace elrr::lp
