#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>

namespace elrr::lp {

namespace {
constexpr double kRatioEps = 1e-9;   // |alpha| below this never blocks
constexpr double kTieTol = 1e-9;     // Harris-style tie window in the ratio test
constexpr std::int64_t kBlandTrigger = 512;  // degenerate steps before Bland
}  // namespace

const char* to_string(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal: return "optimal";
    case LpStatus::kInfeasible: return "infeasible";
    case LpStatus::kUnbounded: return "unbounded";
    case LpStatus::kIterLimit: return "iteration-limit";
    case LpStatus::kTimeLimit: return "time-limit";
    case LpStatus::kNumericError: return "numeric-error";
  }
  return "unknown";
}

SimplexSolver::SimplexSolver(const Model& model, SimplexOptions options)
    : options_(options) {
  model.validate();
  n_ = model.num_cols();
  m_ = model.num_rows();
  total_ = n_ + m_;
  sense_flip_ = model.sense() == Sense::kMaximize ? -1.0 : 1.0;

  cost_.assign(total_, 0.0);
  lo_.assign(total_, -kInf);
  hi_.assign(total_, kInf);
  for (int j = 0; j < n_; ++j) {
    cost_[j] = sense_flip_ * model.col(j).obj;
    lo_[j] = model.col(j).lo;
    hi_[j] = model.col(j).hi;
  }
  dense_a_.assign(static_cast<std::size_t>(m_) * total_, 0.0);
  for (int i = 0; i < m_; ++i) {
    const Row& row = model.row(i);
    for (const auto& entry : row.entries) {
      dense_a_[static_cast<std::size_t>(i) * total_ + entry.col] = entry.coef;
    }
    const int slack = n_ + i;
    dense_a_[static_cast<std::size_t>(i) * total_ + slack] = -1.0;
    lo_[slack] = row.lo;
    hi_[slack] = row.hi;
  }
}

std::int64_t SimplexSolver::iteration_budget() const {
  if (options_.max_iters > 0) return options_.max_iters;
  return std::max<std::int64_t>(20000, 200LL * (m_ + n_));
}

void SimplexSolver::build_initial_basis() {
  // Slack basis: B = -I, hence tab = B^-1 [A|-I] = [-A | I].
  tab_.assign(dense_a_.size(), 0.0);
  for (std::size_t k = 0; k < dense_a_.size(); ++k) tab_[k] = -dense_a_[k];

  basis_.resize(m_);
  where_.assign(total_, Where::kAtLower);
  value_.assign(total_, 0.0);
  for (int j = 0; j < total_; ++j) {
    if (std::isfinite(lo_[j])) {
      where_[j] = Where::kAtLower;
      value_[j] = lo_[j];
    } else if (std::isfinite(hi_[j])) {
      where_[j] = Where::kAtUpper;
      value_[j] = hi_[j];
    } else {
      where_[j] = Where::kFree;
      value_[j] = 0.0;
    }
  }
  for (int i = 0; i < m_; ++i) {
    const int slack = n_ + i;
    basis_[i] = slack;
    where_[slack] = Where::kBasic;
  }
  compute_basic_values();
  dj_valid_ = false;
  bland_ = false;
  degenerate_streak_ = 0;
}

void SimplexSolver::compute_basic_values() {
  for (int i = 0; i < m_; ++i) {
    const double* row = &tab_[static_cast<std::size_t>(i) * total_];
    double acc = 0.0;
    for (int j = 0; j < total_; ++j) {
      if (where_[j] != Where::kBasic && value_[j] != 0.0) {
        acc += row[j] * value_[j];
      }
    }
    value_[basis_[i]] = -acc;
  }
}

void SimplexSolver::compute_reduced_costs() {
  dj_ = cost_;
  for (int i = 0; i < m_; ++i) {
    const double cb = cost_[basis_[i]];
    if (cb == 0.0) continue;
    const double* row = &tab_[static_cast<std::size_t>(i) * total_];
    for (int j = 0; j < total_; ++j) dj_[j] -= cb * row[j];
  }
  for (int i = 0; i < m_; ++i) dj_[basis_[i]] = 0.0;
  dj_valid_ = true;
}

bool SimplexSolver::is_dual_feasible() const {
  if (!dj_valid_) return false;
  for (int j = 0; j < total_; ++j) {
    switch (where_[j]) {
      case Where::kBasic:
        break;
      case Where::kAtLower:
        if (dj_[j] < -options_.opt_tol) return false;
        break;
      case Where::kAtUpper:
        if (dj_[j] > options_.opt_tol) return false;
        break;
      case Where::kFree:
        if (std::abs(dj_[j]) > options_.opt_tol) return false;
        break;
    }
  }
  return true;
}

void SimplexSolver::pivot(int row, int col) {
  double* prow = &tab_[static_cast<std::size_t>(row) * total_];
  const double inv = 1.0 / prow[col];
  for (int j = 0; j < total_; ++j) prow[j] *= inv;
  prow[col] = 1.0;
  for (int i = 0; i < m_; ++i) {
    if (i == row) continue;
    double* irow = &tab_[static_cast<std::size_t>(i) * total_];
    const double factor = irow[col];
    if (factor == 0.0) continue;
    for (int j = 0; j < total_; ++j) irow[j] -= factor * prow[j];
    irow[col] = 0.0;
  }
  if (dj_valid_) {
    const double factor = dj_[col];
    if (factor != 0.0) {
      for (int j = 0; j < total_; ++j) dj_[j] -= factor * prow[j];
      dj_[col] = 0.0;
    }
  }
  basis_[row] = col;
  where_[col] = Where::kBasic;
  ++iterations_;
}

double SimplexSolver::infeasibility() const {
  double total = 0.0;
  for (int i = 0; i < m_; ++i) {
    const int k = basis_[i];
    const double v = value_[k];
    if (v < lo_[k]) total += lo_[k] - v;
    if (v > hi_[k]) total += v - hi_[k];
  }
  return total;
}

LpStatus SimplexSolver::primal_phase1(const Deadline& deadline) {
  const double ftol = options_.feas_tol;
  const std::int64_t budget = iteration_budget();
  std::vector<double> price(total_);
  std::vector<int> below, above;

  while (true) {
    if (deadline.expired()) return LpStatus::kTimeLimit;
    if (iterations_ - call_iter_base_ >= budget) return LpStatus::kIterLimit;

    below.clear();
    above.clear();
    for (int i = 0; i < m_; ++i) {
      const int k = basis_[i];
      if (value_[k] < lo_[k] - ftol) below.push_back(i);
      else if (value_[k] > hi_[k] + ftol) above.push_back(i);
    }
    if (below.empty() && above.empty()) return LpStatus::kOptimal;

    // Composite phase-1 pricing: D_j = d(infeasibility)/d(x_j).
    std::fill(price.begin(), price.end(), 0.0);
    for (int i : below) {
      const double* row = &tab_[static_cast<std::size_t>(i) * total_];
      for (int j = 0; j < total_; ++j) price[j] += row[j];
    }
    for (int i : above) {
      const double* row = &tab_[static_cast<std::size_t>(i) * total_];
      for (int j = 0; j < total_; ++j) price[j] -= row[j];
    }

    int entering = -1;
    int dir = 0;
    double best_score = options_.opt_tol;
    for (int j = 0; j < total_; ++j) {
      if (where_[j] == Where::kBasic) continue;
      const double d = price[j];
      const bool can_up = where_[j] == Where::kAtLower || where_[j] == Where::kFree;
      const bool can_down = where_[j] == Where::kAtUpper || where_[j] == Where::kFree;
      int cand_dir = 0;
      if (can_up && d < -best_score) cand_dir = 1;
      else if (can_down && d > best_score) cand_dir = -1;
      if (cand_dir != 0) {
        entering = j;
        dir = cand_dir;
        best_score = std::abs(d);
        if (bland_) break;  // Bland: first eligible (smallest index)
      }
    }
    if (entering == -1) return LpStatus::kInfeasible;

    // Extended ratio test: infeasible basics block at the violated bound
    // they are moving toward; feasible basics block at regular bounds; the
    // entering variable may flip to its opposite bound.
    double t_best = kInf;
    int block_row = -1;
    double block_alpha = 0.0;
    const double own_range = hi_[entering] - lo_[entering];
    if (std::isfinite(own_range)) t_best = own_range;

    for (int i = 0; i < m_; ++i) {
      const double alpha = tab(i, entering);
      if (std::abs(alpha) <= kRatioEps) continue;
      const double g = -dir * alpha;  // growth rate of basic i w.r.t. step
      const int k = basis_[i];
      const double v = value_[k];
      double limit = kInf;
      if (v < lo_[k] - ftol) {
        if (g > 0) limit = (lo_[k] - v) / g;
      } else if (v > hi_[k] + ftol) {
        if (g < 0) limit = (hi_[k] - v) / g;
      } else if (g > kRatioEps) {
        if (std::isfinite(hi_[k])) limit = std::max(0.0, (hi_[k] - v) / g);
      } else if (g < -kRatioEps) {
        if (std::isfinite(lo_[k])) limit = std::max(0.0, (lo_[k] - v) / g);
      }
      if (limit < t_best - kTieTol ||
          (limit < t_best + kTieTol && std::abs(alpha) > std::abs(block_alpha))) {
        if (limit <= t_best + kTieTol) {
          t_best = std::min(t_best, std::max(0.0, limit));
          block_row = i;
          block_alpha = alpha;
        }
      }
    }

    if (!std::isfinite(t_best)) return LpStatus::kNumericError;

    // Apply the step.
    const double step = t_best;
    if (step != 0.0) {
      for (int i = 0; i < m_; ++i) {
        const double alpha = tab(i, entering);
        if (alpha != 0.0) value_[basis_[i]] -= dir * alpha * step;
      }
      value_[entering] += dir * step;
      degenerate_streak_ = 0;
      bland_ = false;
    } else {
      if (++degenerate_streak_ > kBlandTrigger) bland_ = true;
    }

    if (block_row == -1) {
      // Bound flip of the entering variable.
      where_[entering] =
          dir > 0 ? Where::kAtUpper : Where::kAtLower;
      value_[entering] = dir > 0 ? hi_[entering] : lo_[entering];
      ++iterations_;
    } else {
      const int leaving = basis_[block_row];
      const double g = -dir * block_alpha;
      // Land exactly on the bound the leaving variable hit.
      if (g > 0) {
        const double bound = value_[leaving] >= hi_[leaving] - ftol
                                 ? hi_[leaving]
                                 : lo_[leaving];
        value_[leaving] = bound;
        where_[leaving] =
            bound == hi_[leaving] ? Where::kAtUpper : Where::kAtLower;
      } else {
        const double bound = value_[leaving] <= lo_[leaving] + ftol
                                 ? lo_[leaving]
                                 : hi_[leaving];
        value_[leaving] = bound;
        where_[leaving] =
            bound == lo_[leaving] ? Where::kAtLower : Where::kAtUpper;
      }
      pivot(block_row, entering);
    }
  }
}

LpStatus SimplexSolver::primal_phase2(const Deadline& deadline) {
  if (!dj_valid_) compute_reduced_costs();
  const std::int64_t budget = iteration_budget();

  while (true) {
    if (deadline.expired()) return LpStatus::kTimeLimit;
    if (iterations_ - call_iter_base_ >= budget) return LpStatus::kIterLimit;

    int entering = -1;
    int dir = 0;
    double best_score = options_.opt_tol;
    for (int j = 0; j < total_; ++j) {
      if (where_[j] == Where::kBasic) continue;
      const double d = dj_[j];
      const bool can_up = where_[j] == Where::kAtLower || where_[j] == Where::kFree;
      const bool can_down = where_[j] == Where::kAtUpper || where_[j] == Where::kFree;
      int cand_dir = 0;
      if (can_up && d < -best_score) cand_dir = 1;
      else if (can_down && d > best_score) cand_dir = -1;
      if (cand_dir != 0) {
        entering = j;
        dir = cand_dir;
        best_score = std::abs(d);
        if (bland_) break;
      }
    }
    if (entering == -1) return LpStatus::kOptimal;

    double t_best = kInf;
    int block_row = -1;
    double block_alpha = 0.0;
    const double own_range = hi_[entering] - lo_[entering];
    if (std::isfinite(own_range)) t_best = own_range;

    for (int i = 0; i < m_; ++i) {
      const double alpha = tab(i, entering);
      if (std::abs(alpha) <= kRatioEps) continue;
      const double g = -dir * alpha;
      const int k = basis_[i];
      const double v = value_[k];
      double limit = kInf;
      if (g > kRatioEps) {
        if (std::isfinite(hi_[k])) limit = std::max(0.0, (hi_[k] - v) / g);
      } else if (g < -kRatioEps) {
        if (std::isfinite(lo_[k])) limit = std::max(0.0, (lo_[k] - v) / g);
      }
      if (limit < t_best - kTieTol ||
          (limit < t_best + kTieTol && std::abs(alpha) > std::abs(block_alpha))) {
        if (limit <= t_best + kTieTol) {
          t_best = std::min(t_best, std::max(0.0, limit));
          block_row = i;
          block_alpha = alpha;
        }
      }
    }

    if (!std::isfinite(t_best)) return LpStatus::kUnbounded;

    const double step = t_best;
    if (step != 0.0) {
      for (int i = 0; i < m_; ++i) {
        const double alpha = tab(i, entering);
        if (alpha != 0.0) value_[basis_[i]] -= dir * alpha * step;
      }
      value_[entering] += dir * step;
      degenerate_streak_ = 0;
      bland_ = false;
    } else {
      if (++degenerate_streak_ > kBlandTrigger) bland_ = true;
    }

    if (block_row == -1) {
      where_[entering] = dir > 0 ? Where::kAtUpper : Where::kAtLower;
      value_[entering] = dir > 0 ? hi_[entering] : lo_[entering];
      ++iterations_;
    } else {
      const int leaving = basis_[block_row];
      const double g = -dir * block_alpha;
      const double bound = g > 0 ? hi_[leaving] : lo_[leaving];
      value_[leaving] = bound;
      where_[leaving] = g > 0 ? Where::kAtUpper : Where::kAtLower;
      pivot(block_row, entering);
    }
  }
}

LpStatus SimplexSolver::dual_phase(const Deadline& deadline) {
  if (!dj_valid_) compute_reduced_costs();
  const std::int64_t budget = iteration_budget();
  const double ftol = options_.feas_tol;

  while (true) {
    if (deadline.expired()) return LpStatus::kTimeLimit;
    if (iterations_ - call_iter_base_ >= budget) return LpStatus::kIterLimit;

    // Leaving: most primal-infeasible basic.
    int row = -1;
    double worst = ftol;
    bool below = false;
    for (int i = 0; i < m_; ++i) {
      const int k = basis_[i];
      const double v = value_[k];
      if (lo_[k] - v > worst) {
        worst = lo_[k] - v;
        row = i;
        below = true;
      }
      if (v - hi_[k] > worst) {
        worst = v - hi_[k];
        row = i;
        below = false;
      }
    }
    if (row == -1) {
      // Primal feasible and dual feasible: optimal (polish via phase 2 to
      // guard against tolerance drift).
      return primal_phase2(deadline);
    }

    const int leaving = basis_[row];
    const double* alpha = &tab_[static_cast<std::size_t>(row) * total_];

    // Dual ratio test. theta = dj_q / alpha_q must be <= 0 when the
    // leaving variable lands at its lower bound, >= 0 at its upper bound.
    int entering = -1;
    double best_ratio = kInf;
    double best_alpha = 0.0;
    for (int j = 0; j < total_; ++j) {
      if (where_[j] == Where::kBasic || j == leaving) continue;
      const double a = alpha[j];
      if (std::abs(a) <= kRatioEps) continue;
      bool eligible = false;
      if (below) {  // leaving lands AtLower; need theta <= 0
        eligible = (where_[j] == Where::kAtLower && a < 0.0) ||
                   (where_[j] == Where::kAtUpper && a > 0.0) ||
                   (where_[j] == Where::kFree);
      } else {  // leaving lands AtUpper; need theta >= 0
        eligible = (where_[j] == Where::kAtLower && a > 0.0) ||
                   (where_[j] == Where::kAtUpper && a < 0.0) ||
                   (where_[j] == Where::kFree);
      }
      if (!eligible) continue;
      const double ratio = std::abs(dj_[j] / a);
      if (ratio < best_ratio - kTieTol ||
          (ratio < best_ratio + kTieTol && std::abs(a) > std::abs(best_alpha))) {
        best_ratio = ratio;
        best_alpha = a;
        entering = j;
      }
    }
    if (entering == -1) return LpStatus::kInfeasible;

    const double target = below ? lo_[leaving] : hi_[leaving];
    const double delta_leaving = target - value_[leaving];
    const double delta_entering = -delta_leaving / alpha[entering];

    for (int i = 0; i < m_; ++i) {
      if (i == row) continue;
      const double a = tab(i, entering);
      if (a != 0.0) value_[basis_[i]] -= a * delta_entering;
    }
    value_[entering] += delta_entering;
    value_[leaving] = target;
    where_[leaving] = below ? Where::kAtLower : Where::kAtUpper;
    pivot(row, entering);
  }
}

LpResult SimplexSolver::finish(LpStatus status) {
  LpResult result;
  result.status = status;
  result.iterations = iterations_;
  result.x = structural_values();
  double obj = 0.0;
  for (int j = 0; j < n_; ++j) obj += cost_[j] * value_[j];
  result.objective = sense_flip_ * obj;
  return result;
}

LpResult SimplexSolver::solve() {
  Deadline deadline(options_.time_limit_s);
  call_iter_base_ = iterations_;
  build_initial_basis();
  LpStatus status = primal_phase1(deadline);
  if (status == LpStatus::kOptimal) {
    compute_reduced_costs();
    status = primal_phase2(deadline);
  }
  // Phase 2 pivots may push a basic variable slightly out of bounds via
  // accumulated error (the explicit tableau drifts over thousands of
  // pivots on dense models). Repair by re-running phase 1 from the
  // current basis -- it restores feasibility in a few pivots -- and
  // re-optimizing; declare a numeric error only if two repairs fail.
  for (int repair = 0;
       repair < 2 && status == LpStatus::kOptimal &&
       infeasibility() > 64 * options_.feas_tol;
       ++repair) {
    status = primal_phase1(deadline);
    if (status == LpStatus::kOptimal) {
      compute_reduced_costs();
      status = primal_phase2(deadline);
    }
  }
  if (status == LpStatus::kOptimal &&
      infeasibility() > 64 * options_.feas_tol) {
    status = LpStatus::kNumericError;
  }
  return finish(status);
}

LpResult SimplexSolver::resolve() {
  if (tab_.empty()) return solve();
  if (!dj_valid_) compute_reduced_costs();
  if (!is_dual_feasible()) return solve();
  Deadline deadline(options_.time_limit_s);
  call_iter_base_ = iterations_;
  LpStatus status = dual_phase(deadline);
  if (status == LpStatus::kNumericError) return solve();
  // A dual-simplex infeasibility claim prunes a branch-and-bound subtree;
  // confirm it with a from-scratch primal solve before trusting it.
  if (status == LpStatus::kInfeasible) return solve();
  if (status == LpStatus::kOptimal && infeasibility() > 64 * options_.feas_tol) {
    return solve();
  }
  return finish(status);
}

void SimplexSolver::set_col_bounds(int col, double lo, double hi) {
  ELRR_REQUIRE(col >= 0 && col < n_, "unknown structural column ", col);
  set_bounds_impl(col, lo, hi);
}

void SimplexSolver::set_row_bounds(int row, double lo, double hi) {
  ELRR_REQUIRE(row >= 0 && row < m_, "unknown row ", row);
  set_bounds_impl(n_ + row, lo, hi);
}

// Index-generic bound change: `col` is either a structural column
// (< n_) or a row's slack (n_ + row). The tableau treats both
// identically, so one body serves set_col_bounds and set_row_bounds.
void SimplexSolver::set_bounds_impl(int col, double lo, double hi) {
  ELRR_REQUIRE(!(lo > hi), "empty bounds");
  lo_[col] = lo;
  hi_[col] = hi;
  if (tab_.empty()) return;  // not factorized yet; solve() will pick it up

  if (where_[col] == Where::kBasic) return;  // resolve() repairs violations

  double new_value = value_[col];
  switch (where_[col]) {
    case Where::kAtLower:
      if (std::isfinite(lo)) {
        new_value = lo;
      } else if (std::isfinite(hi)) {
        where_[col] = Where::kAtUpper;
        new_value = hi;
      } else {
        where_[col] = Where::kFree;
        new_value = 0.0;
      }
      break;
    case Where::kAtUpper:
      if (std::isfinite(hi)) {
        new_value = hi;
      } else if (std::isfinite(lo)) {
        where_[col] = Where::kAtLower;
        new_value = lo;
      } else {
        where_[col] = Where::kFree;
        new_value = 0.0;
      }
      break;
    case Where::kFree:
      if (std::isfinite(lo)) {
        where_[col] = Where::kAtLower;
        new_value = lo;
      } else if (std::isfinite(hi)) {
        where_[col] = Where::kAtUpper;
        new_value = hi;
      }
      break;
    case Where::kBasic:
      break;
  }
  const double delta = new_value - value_[col];
  if (delta != 0.0) {
    for (int i = 0; i < m_; ++i) {
      const double a = tab(i, col);
      if (a != 0.0) value_[basis_[i]] -= a * delta;
    }
    value_[col] = new_value;
  }
}

SimplexSolver::State SimplexSolver::save_state() const {
  State s;
  s.tab = tab_;
  s.basis = basis_;
  s.where = where_;
  s.value = value_;
  s.dj = dj_;
  s.lo = lo_;
  s.hi = hi_;
  s.dj_valid = dj_valid_;
  return s;
}

void SimplexSolver::restore_state(const State& state) {
  tab_ = state.tab;
  basis_ = state.basis;
  where_ = state.where;
  value_ = state.value;
  dj_ = state.dj;
  lo_ = state.lo;
  hi_ = state.hi;
  dj_valid_ = state.dj_valid;
  bland_ = false;
  degenerate_streak_ = 0;
}

std::vector<double> SimplexSolver::structural_values() const {
  return std::vector<double>(value_.begin(), value_.begin() + n_);
}

}  // namespace elrr::lp
