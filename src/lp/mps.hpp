#pragma once

/// \file mps.hpp
/// Fixed-format MPS writer for Model -- the lingua franca of LP/MILP
/// solvers. Lets users re-solve any MILP this library builds (MIN_CYC,
/// MAX_THR, min-area retiming, throughput bounds) with an external
/// solver (CPLEX -- the paper's choice -- CBC, Gurobi, HiGHS, glpsol)
/// and cross-check our branch & bound.
///
/// Conventions:
///  * one objective row N OBJ; MPS has no sense record, so a maximization
///    model is written with negated objective coefficients and a COMMENT
///    line saying so (objective value = -(reported optimum));
///  * ranged rows L <= ax <= U emit an L row plus a RANGES entry;
///  * integer columns are wrapped in MARKER INTORG/INTEND pairs;
///  * infinite bounds use MI/PL; free variables FR.
/// Column/row names are sanitized to MPS-safe identifiers (<= 8 chars
/// would be classic MPS; modern readers accept long names, we cap at 60
/// and uniquify).

#include <string>

#include "lp/model.hpp"

namespace elrr::lp {

/// Renders the model as an MPS document. `name` becomes the NAME record.
std::string to_mps(const Model& model, const std::string& name = "ELRR");

/// Parses an MPS document back into a Model -- the inverse of to_mps for
/// the dialect it writes (and ordinary fixed-format MPS generally):
///  * the first N row is the objective; later N rows become free rows;
///  * a "* NOTE: model maximizes" comment flips the sense back to
///    kMaximize and un-negates the objective coefficients, so
///    from_mps(to_mps(m)) preserves m's sense and true objective;
///  * L rows with a RANGES entry become ranged rows [rhs - |range|, rhs]
///    (G rows [rhs, rhs + |range|]); rows with no RHS record get rhs 0;
///  * columns keep their COLUMNS-section first-appearance order, with
///    INTORG/INTEND markers restoring integrality and BOUNDS records
///    applied over the MPS default [0, +inf).
/// Throws InvalidInputError (with the offending line number) on
/// malformed input. The NAME record is not retained by Model.
Model from_mps(const std::string& text);

}  // namespace elrr::lp
