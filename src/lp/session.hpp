#pragma once

/// \file session.hpp
/// Persistent MILP session: one model structure, many solves that differ
/// only in bounds, objective cutoffs and budgets.
///
/// `solve_milp` is stateless -- every call pays a full two-phase cold
/// start. The Pareto walks of the DAC'09 flow solve long chains of
/// almost-identical models (adjacent steps change a handful of row
/// right-hand sides), so `MilpSession` keeps the expensive state alive
/// across calls:
///
///  * one `SimplexSolver` engine over the fixed structure;
///  * the previous solve's optimal root basis, restored and re-optimized
///    with the dual simplex instead of a cold phase-1/phase-2 start;
///  * optionally the previous solve's integer solution, re-fixed and
///    re-priced as the initial branch-and-bound incumbent;
///  * when `MilpOptions::presolve` is on, the reductions are computed
///    once and later bound changes are translated into the cached
///    reduced model (re-presolving only when a change touches an
///    eliminated row/column).
///
/// Exactness contract: with `set_warm(false)` a session solve is
/// bit-identical to a fresh `solve_milp` call on the same model by
/// construction (it *is* that call). With warm starts enabled the
/// session falls back to the cold path whenever the warm state is
/// missing, structurally stale, or the `milp.warm` fail point fires --
/// and the warm path itself degrades to `SimplexSolver::solve()` inside
/// `resolve()` on any dual-infeasibility or numeric trouble. The
/// remaining risk -- a warm search visiting nodes in a different order
/// and returning a different optimum among exact ties -- is pinned
/// empirically by the differential tests in tests/lp and tests/flow
/// (full ISCAS walks, warm vs cold, fleet threads 1/2/4). See
/// src/lp/README.md.

#include <cstdint>
#include <memory>
#include <vector>

#include "lp/milp.hpp"
#include "lp/presolve.hpp"
#include "lp/simplex.hpp"

namespace elrr::lp {

namespace detail {

/// Warm-start plumbing threaded through one branch-and-bound run.
/// All pointers are borrowed and may be null (null engine = the run
/// builds its own, i.e. the stateless `solve_milp` path).
struct WarmContext {
  SimplexSolver* engine = nullptr;  ///< persistent engine to reuse
  const SimplexSolver::State* root_state = nullptr;  ///< prior root basis
  const std::vector<double>* incumbent = nullptr;    ///< prior solution
  SimplexSolver::State* root_state_out = nullptr;    ///< new root basis
  bool seed_incumbent = false;  ///< try `incumbent` as the initial bound
  // Out-fields (what the warm machinery actually did):
  bool warm_root_used = false;
  bool incumbent_seeded = false;
  bool failpoint_fallback = false;
  bool root_state_written = false;
};

/// `solve_milp` minus the `milp.solve` fail-point trip and the input
/// re-validation; the session's cold path delegates here so one
/// session solve counts as exactly one trip.
MilpResult solve_milp_impl(const Model& model, const MilpOptions& options);

/// The branch-and-bound core shared by `solve_milp` (warm == nullptr)
/// and `MilpSession`. Defined in session.cpp.
MilpResult solve_branch_and_bound(const Model& model,
                                  const MilpOptions& options,
                                  WarmContext* warm);

}  // namespace detail

/// Cumulative counters over a session's lifetime.
struct SessionStats {
  std::int64_t solves = 0;
  std::int64_t warm_attempts = 0;   ///< solves entered with a warm state
  std::int64_t warm_roots = 0;      ///< root re-optimized from prior basis
  std::int64_t warm_seeds = 0;      ///< prior solution accepted as incumbent
  std::int64_t warm_fallbacks = 0;  ///< warm state rejected (fail point /
                                    ///< shape mismatch) -> cold solve
  std::int64_t cold_solves = 0;     ///< full stateless-path solves
  std::int64_t presolves = 0;       ///< presolve recomputations
  std::int64_t nodes = 0;
  std::int64_t lp_iterations = 0;
  double solve_seconds = 0.0;
};

/// Persistent solver session over one model structure. Only bounds,
/// cutoffs and budgets may change between solves; rows, columns,
/// coefficients and the objective are fixed at construction.
class MilpSession {
 public:
  explicit MilpSession(Model model, MilpOptions options = {});
  ~MilpSession();
  MilpSession(const MilpSession&) = delete;
  MilpSession& operator=(const MilpSession&) = delete;

  /// Per-step parameterization. Mirrors Model::set_*_bounds; the change
  /// is visible to both the warm and the cold path of the next solve().
  void set_row_bounds(int row, double lo, double hi);
  void set_col_bounds(int col, double lo, double hi);

  /// Decision-problem cutoffs (NaN = disarmed), in the model's sense.
  void set_cutoffs(double target_obj, double futile_bound);

  /// Wall-clock budget of subsequent solves (<= 0: unlimited).
  void set_time_limit(double seconds);

  /// Enables/disables warm starts. Off: every solve() is bit-identical
  /// to a fresh solve_milp(model(), options()) call.
  void set_warm(bool on) { warm_ = on; }
  bool warm() const { return warm_; }

  /// Seed the next solves' incumbent from each solve's solution.
  /// Separate from set_warm because incumbent seeding can legitimately
  /// change which optimum is reported among exact ties; callers that
  /// need argmin stability keep it off (see src/lp/README.md).
  void set_seed_incumbent(bool on) { seed_incumbent_ = on; }

  /// Drops all warm state (basis + incumbent). The next solve is cold.
  void invalidate_warm();

  MilpResult solve();

  const Model& model() const { return model_; }
  const MilpOptions& options() const { return options_; }
  const SessionStats& stats() const { return stats_; }

 private:
  MilpResult solve_direct();    ///< presolve already handled / off
  MilpResult solve_presolved();
  void ensure_engine();
  bool translate_row_change(int row, double lo, double hi);
  bool translate_col_change(int col, double lo, double hi);

  Model model_;
  MilpOptions options_;
  bool warm_ = true;
  bool seed_incumbent_ = false;
  SessionStats stats_;

  // Warm state (integer models: B&B root basis + last solution; pure-LP
  // models: the engine's own basis doubles as the warm state).
  std::unique_ptr<SimplexSolver> engine_;
  std::unique_ptr<SimplexSolver::State> root_state_;
  std::vector<double> last_x_;
  bool has_last_x_ = false;

  // Presolve cache (options_.presolve only): reductions computed once,
  // later bound changes translated into `reduced_`; any change touching
  // an eliminated row/column invalidates the cache.
  struct PresolveCache;
  std::unique_ptr<PresolveCache> pre_;
};

}  // namespace elrr::lp
