#include "lp/mps.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

#include "support/error.hpp"

namespace elrr::lp {

namespace {

/// Shortest decimal form that parses back to exactly `v` -- so that
/// from_mps(to_mps(m)) reproduces every coefficient bit for bit.
std::string number(double v) {
  char buffer[64];
  for (const int precision : {12, 15, 17}) {
    std::snprintf(buffer, sizeof buffer, "%.*g", precision, v);
    if (std::strtod(buffer, nullptr) == v) break;
  }
  return buffer;
}

/// MPS-safe, unique identifiers: alphanumerics plus [._], non-empty,
/// capped length, uniquified with an index suffix on collision.
std::vector<std::string> sanitize(const std::vector<std::string>& raw,
                                  char prefix) {
  std::vector<std::string> names;
  std::map<std::string, int> used;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    std::string name = raw[i];
    for (char& c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '.';
      if (!ok) c = '_';
    }
    if (name.empty()) name = std::string(1, prefix) + std::to_string(i);
    if (name.size() > 60) name.resize(60);
    if (used.count(name) != 0) name += "_" + std::to_string(i);
    used.emplace(name, 1);
    names.push_back(std::move(name));
  }
  return names;
}

}  // namespace

std::string to_mps(const Model& model, const std::string& name) {
  model.validate();
  std::vector<std::string> raw_rows, raw_cols;
  for (int i = 0; i < model.num_rows(); ++i) raw_rows.push_back(model.row(i).name);
  for (int j = 0; j < model.num_cols(); ++j) raw_cols.push_back(model.col(j).name);
  const std::vector<std::string> rows = sanitize(raw_rows, 'r');
  const std::vector<std::string> cols = sanitize(raw_cols, 'x');

  const bool maximize = model.sense() == Sense::kMaximize;
  std::ostringstream os;
  os << "* ElasticRR MILP export (MPS fixed format)\n";
  if (maximize) {
    os << "* NOTE: model maximizes; objective coefficients are negated\n"
       << "*       below -- the true optimum is -(value reported here).\n";
  }
  os << "NAME          " << name << "\n";

  // ROWS: type per row. Ranged rows (both bounds finite, different)
  // emit type L on the upper bound with a RANGES entry; equalities E;
  // one-sided G/L; free rows are not produced by our models but map to N.
  os << "ROWS\n N  OBJ\n";
  struct RowShape {
    char type = 'N';
    double rhs = 0.0;
    double range = 0.0;  ///< 0 = none
  };
  std::vector<RowShape> shapes(static_cast<std::size_t>(model.num_rows()));
  for (int i = 0; i < model.num_rows(); ++i) {
    const Row& row = model.row(i);
    RowShape& shape = shapes[static_cast<std::size_t>(i)];
    const bool lo_fin = std::isfinite(row.lo);
    const bool hi_fin = std::isfinite(row.hi);
    if (lo_fin && hi_fin && row.lo == row.hi) {
      shape = {'E', row.lo, 0.0};
    } else if (lo_fin && hi_fin) {
      shape = {'L', row.hi, row.hi - row.lo};
    } else if (hi_fin) {
      shape = {'L', row.hi, 0.0};
    } else if (lo_fin) {
      shape = {'G', row.lo, 0.0};
    } else {
      shape = {'N', 0.0, 0.0};
    }
    os << " " << shape.type << "  " << rows[static_cast<std::size_t>(i)]
       << "\n";
  }

  // COLUMNS, column-major with INTORG/INTEND markers around integers.
  os << "COLUMNS\n";
  // Row entries per column.
  std::vector<std::vector<std::pair<int, double>>> by_col(
      static_cast<std::size_t>(model.num_cols()));
  for (int i = 0; i < model.num_rows(); ++i) {
    for (const ColEntry& entry : model.row(i).entries) {
      by_col[static_cast<std::size_t>(entry.col)].push_back({i, entry.coef});
    }
  }
  bool in_int = false;
  int marker = 0;
  for (int j = 0; j < model.num_cols(); ++j) {
    const Column& col = model.col(j);
    if (col.is_integer != in_int) {
      os << "    MARKER" << marker << "  'MARKER'  "
         << (col.is_integer ? "'INTORG'" : "'INTEND'") << "\n";
      ++marker;
      in_int = col.is_integer;
    }
    const std::string& cname = cols[static_cast<std::size_t>(j)];
    if (col.obj != 0.0) {
      os << "    " << cname << "  OBJ  "
         << number(maximize ? -col.obj : col.obj) << "\n";
    }
    for (const auto& [i, coef] : by_col[static_cast<std::size_t>(j)]) {
      os << "    " << cname << "  " << rows[static_cast<std::size_t>(i)]
         << "  " << number(coef) << "\n";
    }
  }
  if (in_int) {
    os << "    MARKER" << marker << "  'MARKER'  'INTEND'\n";
  }

  // RHS + RANGES.
  os << "RHS\n";
  for (int i = 0; i < model.num_rows(); ++i) {
    const RowShape& shape = shapes[static_cast<std::size_t>(i)];
    if (shape.type != 'N' && shape.rhs != 0.0) {
      os << "    RHS  " << rows[static_cast<std::size_t>(i)] << "  "
         << number(shape.rhs) << "\n";
    }
  }
  bool any_range = false;
  for (const RowShape& shape : shapes) any_range |= shape.range != 0.0;
  if (any_range) {
    os << "RANGES\n";
    for (int i = 0; i < model.num_rows(); ++i) {
      const RowShape& shape = shapes[static_cast<std::size_t>(i)];
      if (shape.range != 0.0) {
        os << "    RNG  " << rows[static_cast<std::size_t>(i)] << "  "
           << number(shape.range) << "\n";
      }
    }
  }

  // BOUNDS. Default MPS bounds are [0, +inf); emit only deviations.
  os << "BOUNDS\n";
  for (int j = 0; j < model.num_cols(); ++j) {
    const Column& col = model.col(j);
    const std::string& cname = cols[static_cast<std::size_t>(j)];
    const bool lo_fin = std::isfinite(col.lo);
    const bool hi_fin = std::isfinite(col.hi);
    if (!lo_fin && !hi_fin) {
      os << " FR BND  " << cname << "\n";
      continue;
    }
    if (lo_fin && hi_fin && col.lo == col.hi) {
      os << " FX BND  " << cname << "  " << number(col.lo) << "\n";
      continue;
    }
    if (!lo_fin) {
      os << " MI BND  " << cname << "\n";
    } else if (col.lo != 0.0) {
      os << " LO BND  " << cname << "  " << number(col.lo) << "\n";
    }
    if (hi_fin) {
      os << " UP BND  " << cname << "  " << number(col.hi) << "\n";
    } else if (col.is_integer) {
      // Integer columns default to an upper bound of 1 in classic MPS;
      // make the intended infinity explicit.
      os << " PL BND  " << cname << "\n";
    }
  }
  os << "ENDATA\n";
  return os.str();
}

namespace {

[[noreturn]] void parse_fail(int line_no, const std::string& why) {
  throw InvalidInputError("MPS parse error at line " +
                          std::to_string(line_no) + ": " + why);
}

std::vector<std::string> tokens_of(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) toks.push_back(std::move(tok));
  return toks;
}

double parse_number(const std::string& tok, int line_no) {
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0') {
    parse_fail(line_no, "expected a number, got '" + tok + "'");
  }
  return v;
}

}  // namespace

Model from_mps(const std::string& text) {
  enum class Section { kNone, kRows, kColumns, kRhs, kRanges, kBounds, kDone };
  struct PRow {
    char type = 'N';
    std::string name;
    double rhs = 0.0;
    double range = 0.0;  ///< 0 = none
    std::vector<ColEntry> entries;
  };
  struct PCol {
    std::string name;
    bool is_integer = false;
    double obj = 0.0;          ///< as written (still negated if maximizing)
    double lo = 0.0;           ///< MPS default bounds [0, +inf)
    double hi = kInf;
  };

  std::vector<PRow> rows;
  std::map<std::string, int> row_index;
  std::vector<PCol> cols;
  std::map<std::string, int> col_index;
  std::string obj_name;
  bool maximize = false;
  bool in_integer_block = false;
  Section section = Section::kNone;

  // Creates the column on first appearance (COLUMNS order); a column
  // first seen in BOUNDS -- legal MPS, never written by to_mps -- joins
  // the tail as a continuous variable.
  const auto col_of = [&](const std::string& name) -> PCol& {
    const auto [it, fresh] =
        col_index.emplace(name, static_cast<int>(cols.size()));
    if (fresh) {
      cols.push_back(PCol{name, in_integer_block, 0.0, 0.0, kInf});
    }
    return cols[static_cast<std::size_t>(it->second)];
  };

  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '*') {
      if (line.find("model maximizes") != std::string::npos) maximize = true;
      continue;
    }
    const std::vector<std::string> toks = tokens_of(line);
    if (toks.empty()) continue;

    // Section headers start in column 1; data lines are indented.
    if (line[0] != ' ' && line[0] != '\t') {
      const std::string& head = toks[0];
      if (head == "NAME") {
        section = Section::kNone;  // the model name is not retained
      } else if (head == "ROWS") {
        section = Section::kRows;
      } else if (head == "COLUMNS") {
        section = Section::kColumns;
      } else if (head == "RHS") {
        section = Section::kRhs;
      } else if (head == "RANGES") {
        section = Section::kRanges;
      } else if (head == "BOUNDS") {
        section = Section::kBounds;
      } else if (head == "ENDATA") {
        section = Section::kDone;
        break;
      } else {
        parse_fail(line_no, "unknown section '" + head + "'");
      }
      continue;
    }

    switch (section) {
      case Section::kRows: {
        if (toks.size() != 2 || toks[0].size() != 1) {
          parse_fail(line_no, "expected '<type> <name>'");
        }
        const char type = toks[0][0];
        if (type != 'N' && type != 'E' && type != 'L' && type != 'G') {
          parse_fail(line_no, "unknown row type '" + toks[0] + "'");
        }
        if (type == 'N' && obj_name.empty()) {
          obj_name = toks[1];  // first N row is the objective
          break;
        }
        if (!row_index.emplace(toks[1], static_cast<int>(rows.size()))
                 .second) {
          parse_fail(line_no, "duplicate row '" + toks[1] + "'");
        }
        rows.push_back(PRow{type, toks[1], 0.0, 0.0, {}});
        break;
      }
      case Section::kColumns: {
        if (toks.size() == 3 && toks[1] == "'MARKER'") {
          if (toks[2] == "'INTORG'") {
            in_integer_block = true;
          } else if (toks[2] == "'INTEND'") {
            in_integer_block = false;
          } else {
            parse_fail(line_no, "unknown marker '" + toks[2] + "'");
          }
          break;
        }
        if (toks.size() != 3 && toks.size() != 5) {
          parse_fail(line_no, "expected '<col> <row> <value>' pairs");
        }
        PCol& col = col_of(toks[0]);
        const int col_id = col_index.at(toks[0]);
        for (std::size_t k = 1; k + 1 < toks.size(); k += 2) {
          const double value = parse_number(toks[k + 1], line_no);
          if (toks[k] == obj_name) {
            col.obj += value;
          } else {
            const auto it = row_index.find(toks[k]);
            if (it == row_index.end()) {
              parse_fail(line_no, "unknown row '" + toks[k] + "'");
            }
            rows[static_cast<std::size_t>(it->second)].entries.push_back(
                {col_id, value});
          }
        }
        break;
      }
      case Section::kRhs:
      case Section::kRanges: {
        // "<setname> <row> <value>" (pairs allowed); the set name is
        // ignored, as is conventional.
        if (toks.size() != 3 && toks.size() != 5) {
          parse_fail(line_no, "expected '<set> <row> <value>' pairs");
        }
        for (std::size_t k = 1; k + 1 < toks.size(); k += 2) {
          const double value = parse_number(toks[k + 1], line_no);
          if (toks[k] == obj_name) {
            parse_fail(line_no, "objective-row RHS is not supported");
          }
          const auto it = row_index.find(toks[k]);
          if (it == row_index.end()) {
            parse_fail(line_no, "unknown row '" + toks[k] + "'");
          }
          PRow& row = rows[static_cast<std::size_t>(it->second)];
          (section == Section::kRhs ? row.rhs : row.range) = value;
        }
        break;
      }
      case Section::kBounds: {
        if (toks.size() < 3) {
          parse_fail(line_no, "expected '<type> <set> <col> [value]'");
        }
        const std::string& kind = toks[0];
        PCol& col = col_of(toks[2]);
        const bool needs_value = kind == "UP" || kind == "LO" || kind == "FX";
        if (needs_value && toks.size() != 4) {
          parse_fail(line_no, kind + " bound requires a value");
        }
        if (kind == "UP") {
          col.hi = parse_number(toks[3], line_no);
        } else if (kind == "LO") {
          col.lo = parse_number(toks[3], line_no);
        } else if (kind == "FX") {
          col.lo = col.hi = parse_number(toks[3], line_no);
        } else if (kind == "FR") {
          col.lo = -kInf;
          col.hi = kInf;
        } else if (kind == "MI") {
          col.lo = -kInf;
        } else if (kind == "PL") {
          col.hi = kInf;
        } else {
          parse_fail(line_no, "unknown bound type '" + kind + "'");
        }
        break;
      }
      case Section::kNone:
      case Section::kDone:
        parse_fail(line_no, "data line outside any section");
    }
  }
  if (section != Section::kDone) {
    parse_fail(line_no, "missing ENDATA");
  }
  if (obj_name.empty()) {
    parse_fail(line_no, "no objective (N) row");
  }

  Model model;
  if (maximize) model.set_sense(Sense::kMaximize);
  for (const PCol& col : cols) {
    model.add_col(col.lo, col.hi, maximize ? -col.obj : col.obj,
                  col.is_integer, col.name);
  }
  for (PRow& row : rows) {
    double lo = -kInf;
    double hi = kInf;
    switch (row.type) {
      case 'E':
        lo = hi = row.rhs;
        break;
      case 'L':
        hi = row.rhs;
        if (row.range != 0.0) lo = row.rhs - std::abs(row.range);
        break;
      case 'G':
        lo = row.rhs;
        if (row.range != 0.0) hi = row.rhs + std::abs(row.range);
        break;
      default:  // free row
        break;
    }
    model.add_row(lo, hi, std::move(row.entries), row.name);
  }
  model.validate();
  return model;
}

}  // namespace elrr::lp
