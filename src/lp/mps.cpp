#include "lp/mps.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

#include "support/error.hpp"

namespace elrr::lp {

namespace {

std::string number(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.12g", v);
  return buffer;
}

/// MPS-safe, unique identifiers: alphanumerics plus [._], non-empty,
/// capped length, uniquified with an index suffix on collision.
std::vector<std::string> sanitize(const std::vector<std::string>& raw,
                                  char prefix) {
  std::vector<std::string> names;
  std::map<std::string, int> used;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    std::string name = raw[i];
    for (char& c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '.';
      if (!ok) c = '_';
    }
    if (name.empty()) name = std::string(1, prefix) + std::to_string(i);
    if (name.size() > 60) name.resize(60);
    if (used.count(name) != 0) name += "_" + std::to_string(i);
    used.emplace(name, 1);
    names.push_back(std::move(name));
  }
  return names;
}

}  // namespace

std::string to_mps(const Model& model, const std::string& name) {
  model.validate();
  std::vector<std::string> raw_rows, raw_cols;
  for (int i = 0; i < model.num_rows(); ++i) raw_rows.push_back(model.row(i).name);
  for (int j = 0; j < model.num_cols(); ++j) raw_cols.push_back(model.col(j).name);
  const std::vector<std::string> rows = sanitize(raw_rows, 'r');
  const std::vector<std::string> cols = sanitize(raw_cols, 'x');

  const bool maximize = model.sense() == Sense::kMaximize;
  std::ostringstream os;
  os << "* ElasticRR MILP export (MPS fixed format)\n";
  if (maximize) {
    os << "* NOTE: model maximizes; objective coefficients are negated\n"
       << "*       below -- the true optimum is -(value reported here).\n";
  }
  os << "NAME          " << name << "\n";

  // ROWS: type per row. Ranged rows (both bounds finite, different)
  // emit type L on the upper bound with a RANGES entry; equalities E;
  // one-sided G/L; free rows are not produced by our models but map to N.
  os << "ROWS\n N  OBJ\n";
  struct RowShape {
    char type = 'N';
    double rhs = 0.0;
    double range = 0.0;  ///< 0 = none
  };
  std::vector<RowShape> shapes(static_cast<std::size_t>(model.num_rows()));
  for (int i = 0; i < model.num_rows(); ++i) {
    const Row& row = model.row(i);
    RowShape& shape = shapes[static_cast<std::size_t>(i)];
    const bool lo_fin = std::isfinite(row.lo);
    const bool hi_fin = std::isfinite(row.hi);
    if (lo_fin && hi_fin && row.lo == row.hi) {
      shape = {'E', row.lo, 0.0};
    } else if (lo_fin && hi_fin) {
      shape = {'L', row.hi, row.hi - row.lo};
    } else if (hi_fin) {
      shape = {'L', row.hi, 0.0};
    } else if (lo_fin) {
      shape = {'G', row.lo, 0.0};
    } else {
      shape = {'N', 0.0, 0.0};
    }
    os << " " << shape.type << "  " << rows[static_cast<std::size_t>(i)]
       << "\n";
  }

  // COLUMNS, column-major with INTORG/INTEND markers around integers.
  os << "COLUMNS\n";
  // Row entries per column.
  std::vector<std::vector<std::pair<int, double>>> by_col(
      static_cast<std::size_t>(model.num_cols()));
  for (int i = 0; i < model.num_rows(); ++i) {
    for (const ColEntry& entry : model.row(i).entries) {
      by_col[static_cast<std::size_t>(entry.col)].push_back({i, entry.coef});
    }
  }
  bool in_int = false;
  int marker = 0;
  for (int j = 0; j < model.num_cols(); ++j) {
    const Column& col = model.col(j);
    if (col.is_integer != in_int) {
      os << "    MARKER" << marker << "  'MARKER'  "
         << (col.is_integer ? "'INTORG'" : "'INTEND'") << "\n";
      ++marker;
      in_int = col.is_integer;
    }
    const std::string& cname = cols[static_cast<std::size_t>(j)];
    if (col.obj != 0.0) {
      os << "    " << cname << "  OBJ  "
         << number(maximize ? -col.obj : col.obj) << "\n";
    }
    for (const auto& [i, coef] : by_col[static_cast<std::size_t>(j)]) {
      os << "    " << cname << "  " << rows[static_cast<std::size_t>(i)]
         << "  " << number(coef) << "\n";
    }
  }
  if (in_int) {
    os << "    MARKER" << marker << "  'MARKER'  'INTEND'\n";
  }

  // RHS + RANGES.
  os << "RHS\n";
  for (int i = 0; i < model.num_rows(); ++i) {
    const RowShape& shape = shapes[static_cast<std::size_t>(i)];
    if (shape.type != 'N' && shape.rhs != 0.0) {
      os << "    RHS  " << rows[static_cast<std::size_t>(i)] << "  "
         << number(shape.rhs) << "\n";
    }
  }
  bool any_range = false;
  for (const RowShape& shape : shapes) any_range |= shape.range != 0.0;
  if (any_range) {
    os << "RANGES\n";
    for (int i = 0; i < model.num_rows(); ++i) {
      const RowShape& shape = shapes[static_cast<std::size_t>(i)];
      if (shape.range != 0.0) {
        os << "    RNG  " << rows[static_cast<std::size_t>(i)] << "  "
           << number(shape.range) << "\n";
      }
    }
  }

  // BOUNDS. Default MPS bounds are [0, +inf); emit only deviations.
  os << "BOUNDS\n";
  for (int j = 0; j < model.num_cols(); ++j) {
    const Column& col = model.col(j);
    const std::string& cname = cols[static_cast<std::size_t>(j)];
    const bool lo_fin = std::isfinite(col.lo);
    const bool hi_fin = std::isfinite(col.hi);
    if (!lo_fin && !hi_fin) {
      os << " FR BND  " << cname << "\n";
      continue;
    }
    if (lo_fin && hi_fin && col.lo == col.hi) {
      os << " FX BND  " << cname << "  " << number(col.lo) << "\n";
      continue;
    }
    if (!lo_fin) {
      os << " MI BND  " << cname << "\n";
    } else if (col.lo != 0.0) {
      os << " LO BND  " << cname << "  " << number(col.lo) << "\n";
    }
    if (hi_fin) {
      os << " UP BND  " << cname << "  " << number(col.hi) << "\n";
    } else if (col.is_integer) {
      // Integer columns default to an upper bound of 1 in classic MPS;
      // make the intended infinity explicit.
      os << " PL BND  " << cname << "\n";
    }
  }
  os << "ENDATA\n";
  return os.str();
}

}  // namespace elrr::lp
