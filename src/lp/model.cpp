#include "lp/model.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace elrr::lp {

int Model::add_col(double lo, double hi, double obj, bool is_integer,
                   std::string name) {
  ELRR_REQUIRE(!(lo > hi), "empty column bounds [", lo, ", ", hi, "]");
  ELRR_REQUIRE(std::isfinite(obj), "objective coefficient must be finite");
  cols_.push_back(Column{lo, hi, obj, is_integer, std::move(name)});
  return static_cast<int>(cols_.size()) - 1;
}

int Model::add_row(double lo, double hi, std::vector<ColEntry> entries,
                   std::string name) {
  ELRR_REQUIRE(!(lo > hi), "empty row bounds [", lo, ", ", hi, "]");
  // Merge duplicate columns.
  std::map<int, double> merged;
  for (const auto& entry : entries) {
    ELRR_REQUIRE(entry.col >= 0 && entry.col < num_cols(),
                 "row references unknown column ", entry.col);
    ELRR_REQUIRE(std::isfinite(entry.coef), "non-finite row coefficient");
    merged[entry.col] += entry.coef;
  }
  Row row;
  row.lo = lo;
  row.hi = hi;
  row.name = std::move(name);
  row.entries.reserve(merged.size());
  for (const auto& [col, coef] : merged) {
    if (coef != 0.0) row.entries.push_back({col, coef});
  }
  rows_.push_back(std::move(row));
  return static_cast<int>(rows_.size()) - 1;
}

void Model::set_col_bounds(int col, double lo, double hi) {
  ELRR_REQUIRE(col >= 0 && col < num_cols(), "unknown column ", col);
  ELRR_REQUIRE(!(lo > hi), "empty column bounds [", lo, ", ", hi, "]");
  cols_[static_cast<std::size_t>(col)].lo = lo;
  cols_[static_cast<std::size_t>(col)].hi = hi;
}

void Model::set_row_bounds(int row, double lo, double hi) {
  ELRR_REQUIRE(row >= 0 && row < num_rows(), "unknown row ", row);
  ELRR_REQUIRE(!(lo > hi), "empty row bounds [", lo, ", ", hi, "]");
  rows_[static_cast<std::size_t>(row)].lo = lo;
  rows_[static_cast<std::size_t>(row)].hi = hi;
}

void Model::set_obj(int col, double coef) {
  ELRR_REQUIRE(col >= 0 && col < num_cols(), "unknown column ", col);
  ELRR_REQUIRE(std::isfinite(coef), "objective coefficient must be finite");
  cols_[static_cast<std::size_t>(col)].obj = coef;
}

bool Model::has_integers() const {
  return std::any_of(cols_.begin(), cols_.end(),
                     [](const Column& c) { return c.is_integer; });
}

void Model::validate() const {
  for (int j = 0; j < num_cols(); ++j) {
    const Column& c = col(j);
    ELRR_REQUIRE(!(c.lo > c.hi), "column ", j, " has empty bounds");
    ELRR_REQUIRE(!std::isnan(c.lo) && !std::isnan(c.hi), "NaN column bound");
  }
  for (int i = 0; i < num_rows(); ++i) {
    const Row& r = row(i);
    ELRR_REQUIRE(!(r.lo > r.hi), "row ", i, " has empty bounds");
    for (const auto& entry : r.entries) {
      ELRR_REQUIRE(entry.col >= 0 && entry.col < num_cols(),
                   "row ", i, " references unknown column");
      ELRR_REQUIRE(std::isfinite(entry.coef), "row ", i,
                   " has non-finite coefficient");
    }
  }
}

double Model::objective_value(const std::vector<double>& x) const {
  ELRR_REQUIRE(x.size() == static_cast<std::size_t>(num_cols()),
               "point dimension mismatch");
  double value = 0.0;
  for (int j = 0; j < num_cols(); ++j) {
    value += col(j).obj * x[static_cast<std::size_t>(j)];
  }
  return value;
}

double Model::max_infeasibility(const std::vector<double>& x) const {
  ELRR_REQUIRE(x.size() == static_cast<std::size_t>(num_cols()),
               "point dimension mismatch");
  double worst = 0.0;
  for (int j = 0; j < num_cols(); ++j) {
    const Column& c = col(j);
    const double v = x[static_cast<std::size_t>(j)];
    worst = std::max(worst, c.lo - v);
    worst = std::max(worst, v - c.hi);
    if (c.is_integer) {
      worst = std::max(worst, std::abs(v - std::round(v)));
    }
  }
  for (int i = 0; i < num_rows(); ++i) {
    const Row& r = row(i);
    double activity = 0.0;
    for (const auto& entry : r.entries) {
      activity += entry.coef * x[static_cast<std::size_t>(entry.col)];
    }
    worst = std::max(worst, r.lo - activity);
    worst = std::max(worst, activity - r.hi);
  }
  return worst;
}

namespace {
std::string col_name(const Model& m, int j) {
  const std::string& n = m.col(j).name;
  return n.empty() ? "x" + std::to_string(j) : n;
}
}  // namespace

std::string Model::to_lp_format() const {
  std::ostringstream os;
  os << (sense_ == Sense::kMinimize ? "Minimize" : "Maximize") << "\n obj:";
  for (int j = 0; j < num_cols(); ++j) {
    if (col(j).obj != 0.0) {
      os << (col(j).obj >= 0 ? " + " : " - ") << std::abs(col(j).obj) << " "
         << col_name(*this, j);
    }
  }
  os << "\nSubject To\n";
  for (int i = 0; i < num_rows(); ++i) {
    const Row& r = row(i);
    std::ostringstream expr;
    for (const auto& e : r.entries) {
      expr << (e.coef >= 0 ? " + " : " - ") << std::abs(e.coef) << " "
           << col_name(*this, e.col);
    }
    const std::string rname =
        r.name.empty() ? "c" + std::to_string(i) : r.name;
    if (r.lo == r.hi) {
      os << " " << rname << ":" << expr.str() << " = " << r.lo << "\n";
    } else {
      if (r.lo != -kInf) {
        os << " " << rname << ".lo:" << expr.str() << " >= " << r.lo << "\n";
      }
      if (r.hi != kInf) {
        os << " " << rname << ".hi:" << expr.str() << " <= " << r.hi << "\n";
      }
    }
  }
  os << "Bounds\n";
  for (int j = 0; j < num_cols(); ++j) {
    os << " " << col(j).lo << " <= " << col_name(*this, j) << " <= "
       << col(j).hi << "\n";
  }
  bool any_int = false;
  for (int j = 0; j < num_cols(); ++j) any_int |= col(j).is_integer;
  if (any_int) {
    os << "General\n";
    for (int j = 0; j < num_cols(); ++j) {
      if (col(j).is_integer) os << " " << col_name(*this, j);
    }
    os << "\n";
  }
  os << "End\n";
  return os.str();
}

}  // namespace elrr::lp
