#pragma once

/// \file simplex.hpp
/// Bounded-variable two-phase primal simplex with a dual simplex for
/// warm-started re-solves, on a dense tableau.
///
/// Design notes
///  * Every row i gets a slack s_i with bounds equal to the row's activity
///    range, turning the system into  A.x - s = 0  with all variables
///    bounded (possibly infinitely). The initial basis is the slack set.
///  * Phase 1 minimizes the total bound violation of basic variables with
///    the classical composite objective; phase 2 minimizes the user
///    objective with Dantzig pricing and a Bland fallback after stalls.
///  * `save_state` / `restore_state` snapshot the full tableau so a branch
///    and bound search can replay bound changes from the root relaxation
///    and re-optimize with the dual simplex (see milp.hpp).
///
/// Suitable for the dense, medium-size MILPs of the DAC'09 flow
/// (hundreds to a few thousands of rows). Not a sparse industrial code.

#include <cstdint>
#include <vector>

#include "lp/model.hpp"
#include "support/stopwatch.hpp"

namespace elrr::lp {

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterLimit,
  kTimeLimit,
  kNumericError,
};

const char* to_string(LpStatus status);

struct LpResult {
  LpStatus status = LpStatus::kNumericError;
  double objective = 0.0;          ///< in the model's original sense
  std::vector<double> x;           ///< structural variable values
  std::int64_t iterations = 0;
};

struct SimplexOptions {
  double feas_tol = 1e-7;    ///< bound/row feasibility tolerance
  double opt_tol = 1e-7;     ///< reduced-cost optimality tolerance
  double pivot_tol = 1e-9;   ///< minimum acceptable pivot magnitude
  std::int64_t max_iters = -1;   ///< <0: automatic (scales with size)
  double time_limit_s = -1.0;    ///< <=0: no limit
};

/// Incremental simplex engine over one model. The model's structure
/// (rows/columns/coefficients/objective) is fixed at construction; only
/// column bounds may be changed afterwards.
class SimplexSolver {
 public:
  explicit SimplexSolver(const Model& model, SimplexOptions options = {});

  /// Solves from scratch (slack basis, phase 1 + phase 2).
  LpResult solve();

  /// Re-optimizes after set_col_bounds calls, starting from the current
  /// (dual-feasible) basis using the dual simplex. Falls back to a full
  /// primal solve if the basis is not dual feasible.
  LpResult resolve();

  /// Tightens/changes bounds of a structural column. Keeps the tableau
  /// consistent; call resolve() afterwards.
  void set_col_bounds(int col, double lo, double hi);

  /// Changes the activity range of a row (its slack variable's bounds).
  /// Same contract as set_col_bounds: tableau stays consistent, follow
  /// with resolve(). This is what makes a session warm-start possible
  /// for models whose steps differ only in row right-hand sides.
  void set_row_bounds(int row, double lo, double hi);

  /// Full engine snapshot (tableau, basis, values, reduced costs).
  struct State;
  State save_state() const;
  void restore_state(const State& state);

  /// Last computed structural solution (valid after solve/resolve).
  std::vector<double> structural_values() const;

  std::int64_t total_iterations() const { return iterations_; }

  /// Adjusts the wall-clock budget of subsequent solve/resolve calls
  /// (branch & bound passes the remaining global budget down).
  void set_time_limit(double seconds) { options_.time_limit_s = seconds; }

 private:
  enum class Where : std::uint8_t { kBasic, kAtLower, kAtUpper, kFree };

  // --- problem data (fixed) ---
  int n_ = 0;                   ///< structural columns
  int m_ = 0;                   ///< rows (== slack count)
  int total_ = 0;               ///< n_ + m_
  std::vector<double> cost_;    ///< minimization costs, size total_
  std::vector<double> lo_, hi_; ///< bounds, size total_
  double sense_flip_ = 1.0;     ///< -1 when the model maximizes
  SimplexOptions options_;
  std::vector<double> dense_a_; ///< m_ x total_ original matrix [A | -I]

  // --- engine state ---
  std::vector<double> tab_;     ///< m_ x total_ current tableau B^-1 [A|-I]
  std::vector<int> basis_;      ///< size m_, variable basic in each row
  std::vector<Where> where_;    ///< size total_
  std::vector<double> value_;   ///< size total_, current values
  std::vector<double> dj_;      ///< size total_, phase-2 reduced costs
  bool dj_valid_ = false;
  std::int64_t iterations_ = 0;       ///< cumulative across solves
  std::int64_t call_iter_base_ = 0;   ///< iterations_ at entry of this call
  std::int64_t degenerate_streak_ = 0;
  bool bland_ = false;

  double& tab(int i, int j) { return tab_[static_cast<std::size_t>(i) * total_ + j]; }
  double tab(int i, int j) const { return tab_[static_cast<std::size_t>(i) * total_ + j]; }
  double dense_a(int i, int j) const { return dense_a_[static_cast<std::size_t>(i) * total_ + j]; }

  void set_bounds_impl(int idx, double lo, double hi);
  void build_initial_basis();
  void compute_basic_values();
  void compute_reduced_costs();
  bool is_dual_feasible() const;
  void pivot(int row, int col);
  double infeasibility() const;

  // Phase drivers; return a status restricted to
  // {kOptimal = subproblem solved, kInfeasible, kUnbounded, limits}.
  LpStatus primal_phase1(const Deadline& deadline);
  LpStatus primal_phase2(const Deadline& deadline);
  LpStatus dual_phase(const Deadline& deadline);

  LpResult finish(LpStatus status);
  std::int64_t iteration_budget() const;
};

struct SimplexSolver::State {
  std::vector<double> tab;
  std::vector<int> basis;
  std::vector<Where> where;
  std::vector<double> value;
  std::vector<double> dj;
  std::vector<double> lo, hi;
  bool dj_valid = false;
};

}  // namespace elrr::lp
